package autopilot

import (
	"encoding/json"
	"math"
	"testing"

	"questgo/internal/obs"
)

// newTest returns a controller with deterministic small-number tuning:
// L=40, k=10, cadence 2, patience 2, cooldown 1.
func newTest(t *testing.T) *Controller {
	t.Helper()
	c, err := New(Config{
		L: 40, InitialK: 10, InitialCheckEvery: 2,
		Patience: 2, Cooldown: 1,
		MaxK: 20, MaxCheckEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// stableSweep feeds one fully-stable sweep window and evaluates it.
func stableSweep(c *Controller) Action {
	c.ObserveStability(obs.ProbeWrapDrift, 1e-12)
	c.ObserveStability(obs.ProbeStratResidual, 1e-14)
	c.ObserveStability(obs.ProbeUDTCond, 3)
	return c.EndSweep()
}

func TestDefaultsAndValidate(t *testing.T) {
	if _, err := New(Config{L: 40, InitialK: 10}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := []Config{
		{L: 0, InitialK: 1},
		{L: 40, InitialK: 7},                                        // not a divisor
		{L: 40, InitialK: 10, MinK: 20},                             // MinK > InitialK
		{L: 40, InitialK: 10, MaxK: 5},                              // MaxK < InitialK
		{L: 40, InitialK: 10, DriftCeil: math.NaN()},                // NaN threshold
		{L: 40, InitialK: 10, ResidualFloor: 1, ResidualCeil: 1e-9}, // floor >= ceil
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestShrinkOnResidualBreach(t *testing.T) {
	c := newTest(t)
	c.ObserveStability(obs.ProbeStratResidual, 1e-6) // >> ceiling 1e-9
	a := c.EndSweep()
	if !a.Changed || a.Reason != "residual_ceiling" {
		t.Fatalf("breach not acted on: %+v", a)
	}
	if a.K != 8 { // largest divisor of 40 below 10
		t.Fatalf("shrink k = %d, want 8", a.K)
	}
	if a.CheckEvery != 1 {
		t.Fatalf("shrink cadence = %d, want 1", a.CheckEvery)
	}
	st := c.State()
	if st.KCap != 8 || st.Shrinks != 1 {
		t.Fatalf("state after shrink: %+v", st)
	}
}

func TestGrowthNeedsPatienceAndCooldown(t *testing.T) {
	c := newTest(t)
	// Patience=2: the first stable sweep must not grow.
	if a := stableSweep(c); a.Changed {
		t.Fatalf("grew after one stable sweep: %+v", a)
	}
	a := stableSweep(c)
	if !a.Changed || a.Reason != "stable_grow" {
		t.Fatalf("no growth after patience met: %+v", a)
	}
	if a.K != 20 { // largest divisor of 40 in (10, 20]
		t.Fatalf("grow k = %d, want 20", a.K)
	}
	if a.CheckEvery != 4 {
		t.Fatalf("grow cadence = %d, want 4", a.CheckEvery)
	}
	// Cooldown=1: the very next stable sweep must not change anything.
	if a := stableSweep(c); a.Changed {
		t.Fatalf("changed during cooldown: %+v", a)
	}
}

// TestNoOscillation drives the controller through the adversarial pattern
// hysteresis exists for: k=20 always breaches, k<=10 is always stable. The
// KCap must pin the controller below the breached k forever instead of
// bouncing 10 <-> 20.
func TestNoOscillation(t *testing.T) {
	c := newTest(t)
	// Grow to 20 first (patience 2).
	stableSweep(c)
	if a := stableSweep(c); a.K != 20 {
		t.Fatalf("setup grow failed: %+v", a)
	}
	// k=20 breaches.
	c.ObserveStability(obs.ProbeStratResidual, 1e-6)
	a := c.EndSweep()
	if a.K >= 20 {
		t.Fatalf("no shrink after breach: %+v", a)
	}
	// Hundreds of stable sweeps later, k must never reach 20 again.
	maxK := 0
	for i := 0; i < 300; i++ {
		a := stableSweep(c)
		if a.K > maxK {
			maxK = a.K
		}
	}
	if maxK >= 20 {
		t.Fatalf("controller re-grew to breached k = %d", maxK)
	}
	st := c.State()
	if st.KCap >= 20 {
		t.Fatalf("KCap %d not pinned below breached k", st.KCap)
	}
}

func TestDivisorSteps(t *testing.T) {
	cases := []struct{ L, k, min, want int }{
		{40, 10, 1, 8},
		{40, 8, 1, 5},
		{40, 2, 1, 1},
		{40, 1, 1, 1}, // already minimal: no change
		{48, 12, 1, 8},
		{160, 10, 1, 8},
	}
	for _, tc := range cases {
		if got := largestDivisorBelow(tc.L, tc.k, tc.min); got != tc.want {
			t.Fatalf("largestDivisorBelow(%d,%d,%d) = %d, want %d", tc.L, tc.k, tc.min, got, tc.want)
		}
	}
	growCases := []struct{ L, lo, hi, want int }{
		{40, 10, 20, 20},
		{40, 20, 40, 40},
		{40, 8, 16, 10},
		{40, 5, 7, 5}, // no divisor in range: stay
		{160, 8, 16, 16},
	}
	for _, tc := range growCases {
		if got := largestDivisorBetween(tc.L, tc.lo, tc.hi); got != tc.want {
			t.Fatalf("largestDivisorBetween(%d,%d,%d) = %d, want %d", tc.L, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestNonFiniteEmergency(t *testing.T) {
	c := newTest(t)
	c.ObserveStability(obs.ProbeWrapDrift, math.NaN())
	a := c.EndSweep()
	if !a.Changed || a.Reason != "non_finite" {
		t.Fatalf("NaN sample not treated as emergency: %+v", a)
	}
	if a.K != 1 || a.CheckEvery != 1 {
		t.Fatalf("emergency settings k=%d cadence=%d, want 1/1", a.K, a.CheckEvery)
	}
	st := c.State()
	if !st.NonFinite || st.NonFiniteEvents != 1 || st.KCap != 1 {
		t.Fatalf("emergency state: %+v", st)
	}
	// Frozen: stable sweeps can never grow past the emergency cap.
	for i := 0; i < 20; i++ {
		if a := stableSweep(c); a.K != 1 {
			t.Fatalf("grew after non-finite emergency: %+v", a)
		}
	}
	doc := c.MetricsDoc()
	if !doc.NonFinite || doc.NonFiniteEvents != 1 {
		t.Fatalf("metrics doc misses non-finite record: %+v", doc)
	}
	if _, err := json.Marshal(doc); err != nil {
		t.Fatalf("autopilot metrics must marshal: %v", err)
	}
}

func TestStateRoundTrip(t *testing.T) {
	c := newTest(t)
	stableSweep(c)
	stableSweep(c) // grow
	c.ObserveStability(obs.ProbeStratResidual, 1e-6)
	c.EndSweep() // shrink
	st := c.State()

	c2 := newTest(t)
	c2.Restore(st)
	if got := c2.State(); got != st {
		t.Fatalf("state round trip: %+v vs %+v", got, st)
	}
	if c2.K() != st.K || c2.CheckEvery() != st.CheckEvery {
		t.Fatalf("accessors after restore: k=%d cadence=%d", c2.K(), c2.CheckEvery())
	}
}

func TestRestoreClampsBadK(t *testing.T) {
	c := newTest(t)
	c.Restore(State{K: 7, CheckEvery: 2, KCap: 40, CheckEveryCap: 8}) // 7 does not divide 40
	if k := c.K(); 40%k != 0 {
		t.Fatalf("restored k = %d does not divide L", k)
	}
}

func TestMetricsDocTrajectory(t *testing.T) {
	c := newTest(t)
	stableSweep(c)
	stableSweep(c) // grow 10 -> 20
	doc := c.MetricsDoc()
	if !doc.Enabled || doc.InitialK != 10 || doc.FinalK != 20 || doc.Grows != 1 || doc.Shrinks != 0 {
		t.Fatalf("trajectory doc: %+v", doc)
	}
	if len(doc.Decisions) != 1 || doc.Decisions[0].Reason != "stable_grow" {
		t.Fatalf("decision log: %+v", doc.Decisions)
	}
}

// TestUnstableSweepResetsStreak: a sweep above the growth floor (but below
// the ceiling) must reset patience, not accumulate toward growth.
func TestUnstableSweepResetsStreak(t *testing.T) {
	c := newTest(t)
	stableSweep(c)
	c.ObserveStability(obs.ProbeWrapDrift, 5e-4) // above floor 1e-4, below ceil 1e-3
	if a := c.EndSweep(); a.Changed {
		t.Fatalf("mid-band sweep changed knobs: %+v", a)
	}
	// Streak was reset: one more stable sweep must not be enough.
	if a := stableSweep(c); a.Changed {
		t.Fatalf("grew without full patience after reset: %+v", a)
	}
	if a := stableSweep(c); !a.Changed {
		t.Fatalf("expected growth after full patience: %+v", a)
	}
}

package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

func checkpointTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.U, cfg.Beta, cfg.L = 4, 2, 10
	cfg.ClusterK = 5
	cfg.WarmSweeps, cfg.MeasSweeps = 0, 1 // sweeps driven manually via Run
	return cfg
}

// TestResumeReproducesUninterruptedRun is the defining property: 4 + 6
// sweeps with a checkpoint in between must equal 10 straight sweeps,
// field for field and observable for observable.
func TestResumeReproducesUninterruptedRun(t *testing.T) {
	cfg := checkpointTestConfig()

	// Uninterrupted: 4 warmup + 6 measurement sweeps.
	ref := cfg
	ref.WarmSweeps, ref.MeasSweeps = 4, 6
	refRes, err := runOnce(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: 4 warmup sweeps, checkpoint, resume, 6 measurement
	// sweeps.
	first := cfg
	first.WarmSweeps, first.MeasSweeps = 3, 1 // 4 total sweeps, then stop
	sim1, err := New(first)
	if err != nil {
		t.Fatal(err)
	}
	sim1.Run()
	ck := sim1.Checkpoint()

	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ck2.Config.WarmSweeps, ck2.Config.MeasSweeps = 0, 6
	sim2, err := Resume(ck2)
	if err != nil {
		t.Fatal(err)
	}
	res := sim2.Run()

	if res.DoubleOcc != refRes.DoubleOcc || res.Kinetic != refRes.Kinetic || res.SAF != refRes.SAF {
		t.Fatalf("resumed run diverged:\n  straight: docc=%v kin=%v\n  resumed:  docc=%v kin=%v",
			refRes.DoubleOcc, refRes.Kinetic, res.DoubleOcc, res.Kinetic)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	cfg := checkpointTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	ck := sim.Checkpoint()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sign != ck.Sign || loaded.RngState != ck.RngState {
		t.Fatal("checkpoint state corrupted in file round trip")
	}
	for l := range ck.FieldH {
		for i := range ck.FieldH[l] {
			if loaded.FieldH[l][i] != ck.FieldH[l][i] {
				t.Fatal("field corrupted in file round trip")
			}
		}
	}
}

func TestResumeValidation(t *testing.T) {
	cfg := checkpointTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 1, 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	ck := sim.Checkpoint()

	bad := *ck
	bad.FieldH = bad.FieldH[:len(bad.FieldH)-1]
	if _, err := Resume(&bad); err == nil {
		t.Fatal("truncated field should fail")
	}

	bad2 := *ck
	bad2.FieldH = make([][]float64, len(ck.FieldH))
	copy(bad2.FieldH, ck.FieldH)
	row := append([]float64(nil), ck.FieldH[0]...)
	row[0] = 0.5
	bad2.FieldH[0] = row
	if _, err := Resume(&bad2); err == nil {
		t.Fatal("non-Ising field value should fail")
	}

	bad3 := *ck
	bad3.Config.Beta = -1
	if _, err := Resume(&bad3); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestLoadCheckpointMissing(t *testing.T) {
	if _, err := LoadCheckpoint("/no/such/file.ckpt"); err == nil {
		t.Fatal("expected error")
	}
}

func TestCheckpointIsDeepCopy(t *testing.T) {
	cfg := checkpointTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 1, 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	ck := sim.Checkpoint()
	before := ck.FieldH[0][0]
	sim.Run() // mutate the live field
	if ck.FieldH[0][0] != before {
		t.Fatal("checkpoint must not alias the live field")
	}
}

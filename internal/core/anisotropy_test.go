package core

import (
	"math"
	"testing"
)

func TestAnisotropicDispersion(t *testing.T) {
	// U = 0 with tx != ty: n(k) must match
	// eps_k = -2 tx cos kx - 2 ty cos ky.
	ty := 0.4
	cfg := Config{
		Nx: 6, Ny: 6, Layers: 1, T: 1, Ty: ty,
		U: 0, Mu: 0, Beta: 3, L: 24,
		WarmSweeps: 2, MeasSweeps: 4,
		ClusterK: 8, Delay: 16, PrePivot: true,
		Seed: 6,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	for _, p := range sim.Lattice().MomentumGrid() {
		eps := -2*math.Cos(p.Kx) - 2*ty*math.Cos(p.Ky)
		want := 1 / (1 + math.Exp(cfg.Beta*eps))
		got := res.Nk[p.Ix+cfg.Nx*p.Iy]
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("n(k=%.2f,%.2f) = %v want %v", p.Kx, p.Ky, got, want)
		}
	}
}

func TestAnisotropyBreaksXYSymmetry(t *testing.T) {
	// With ty < tx, n(k) along kx and ky must differ.
	cfg := Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1, Ty: 0.3,
		U: 2, Mu: 0, Beta: 2, L: 10,
		WarmSweeps: 20, MeasSweeps: 60,
		ClusterK: 5, Delay: 16, PrePivot: true,
		Seed: 8,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	nkX := res.Nk[1]   // k = (pi/2, 0)
	nkY := res.Nk[4*1] // k = (0, pi/2)
	if math.Abs(nkX-nkY) < 0.02 {
		t.Fatalf("anisotropy invisible: n(kx)=%v n(ky)=%v", nkX, nkY)
	}
	// The weakly coupled (y) direction is flatter: states below/above the
	// Fermi level less separated. At half filling both points sit on
	// opposite sides; ordering depends on sign of eps — just require
	// a clear difference (asserted above) and document the values.
	t.Logf("n(pi/2,0) = %.3f, n(0,pi/2) = %.3f", nkX, nkY)
}

package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"questgo/internal/autopilot"
)

// Checkpoint captures the complete Markov-chain state of a simulation: the
// configuration, the Hubbard-Stratonovich field, the RNG state, and the
// incrementally tracked fermion sign. A chain resumed from a checkpoint
// reproduces the uninterrupted run sweep for sweep (verified by tests) —
// the long production runs of the paper (36 hours for N = 1024) are
// exactly the kind of job that needs restart files.
type Checkpoint struct {
	Config   Config
	FieldH   [][]float64
	RngState [4]uint64
	Sign     float64
	// Accepted/Proposed are the lifetime Metropolis counters, carried so a
	// resumed run's acceptance rate covers the whole chain, not just the
	// sweeps executed after the restart. Old restart files decode them as
	// zero, which reproduces the previous post-restart behavior.
	Accepted int64
	Proposed int64
	// Autopilot is the controller state when Config.Autopilot is on (nil
	// otherwise): the resumed run continues with the adapted cluster size and
	// check cadence instead of restarting the adaptation from the config.
	Autopilot *autopilot.State
}

// Checkpoint snapshots the current chain state. Call it between sweeps
// (e.g. from a RunProgress callback after the sweep completes).
func (s *Simulation) Checkpoint() *Checkpoint {
	c := &Checkpoint{
		Config:   s.cfg,
		FieldH:   make([][]float64, len(s.field.H)),
		RngState: s.rng.State(),
		Sign:     s.sweeper.Sign(),
	}
	c.Accepted, c.Proposed = s.sweeper.Counters()
	for i, row := range s.field.H {
		c.FieldH[i] = append([]float64(nil), row...)
	}
	if s.pilot != nil {
		st := s.pilot.State()
		c.Autopilot = &st
	}
	return c
}

// Encode serializes the checkpoint with encoding/gob.
func (c *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(c)
}

// Save writes the checkpoint to a file, atomically via a temp file rename.
func (c *Checkpoint) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpoint deserializes a checkpoint from r.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// Resume reconstructs a Simulation whose Markov chain continues exactly
// where the checkpoint left off. The caller chooses the remaining sweep
// schedule through the checkpointed Config (adjust WarmSweeps/MeasSweeps
// before calling if needed).
func Resume(c *Checkpoint) (*Simulation, error) {
	if err := c.Config.Validate(); err != nil {
		return nil, err
	}
	sim, err := New(c.Config)
	if err != nil {
		return nil, err
	}
	n := sim.model.N()
	if len(c.FieldH) != c.Config.L {
		return nil, fmt.Errorf("core: checkpoint field has %d slices, config needs %d", len(c.FieldH), c.Config.L)
	}
	for l, row := range c.FieldH {
		if len(row) != n {
			return nil, fmt.Errorf("core: checkpoint slice %d has %d sites, lattice has %d", l, len(row), n)
		}
		for i, v := range row {
			if v != 1 && v != -1 {
				return nil, fmt.Errorf("core: checkpoint field value %v at (%d,%d)", v, l, i)
			}
			sim.field.H[l][i] = v
		}
	}
	sim.rng.Restore(c.RngState)
	// Rebuild the sweeper state (clusters + Green's functions) from the
	// restored field, and restore the tracked sign. The collector is reused
	// and re-baselined so the resumed run's metrics start clean. A restored
	// autopilot overrides the config's k and cadence with the adapted values
	// so the resumed chain continues where the controller left off.
	clusterK := c.Config.ClusterK
	stabEvery := c.Config.StabilityCheckEvery
	if c.Config.Autopilot && stabEvery == 0 {
		stabEvery = 4 // same blind-controller default as newWithCollector
	}
	if c.Autopilot != nil && sim.pilot != nil {
		sim.pilot.Restore(*c.Autopilot)
		clusterK = sim.pilot.K()
		stabEvery = sim.pilot.CheckEvery()
	}
	sim.col.Reset()
	sim.sweeper, sim.group = newSweeper(c.Config, sim.prop, sim.field, sim.rng, sim.col, clusterK, stabEvery)
	sim.sweeper.SetSign(c.Sign)
	sim.sweeper.SetCounters(c.Accepted, c.Proposed)
	return sim, nil
}

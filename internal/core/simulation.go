// Package core ties the DQMC pieces together into the full simulation the
// paper runs: warmup sweeps, measurement sweeps, sign-weighted observable
// accumulation with binned/jackknife errors, and the per-phase timing
// profile of Table I.
package core

import (
	"fmt"

	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/measure"
	"questgo/internal/profile"
	"questgo/internal/rng"
	"questgo/internal/stats"
	"questgo/internal/update"
)

// Config specifies a DQMC simulation. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	// Lattice geometry.
	Nx, Ny int
	Layers int     // 1 for the standard 2D model
	T      float64 // in-plane hopping (x direction, and y unless Ty set)
	Ty     float64 // anisotropic y hopping (0 = same as T)
	TPrime float64 // next-nearest-neighbor (diagonal) hopping t'
	Tperp  float64 // inter-layer hopping (ignored when Layers == 1)

	// Hamiltonian and temperature.
	U    float64
	Mu   float64
	Beta float64
	L    int // imaginary-time slices

	// Monte Carlo schedule. The paper's production runs use 1000 warmup
	// and 2000 measurement sweeps.
	WarmSweeps int
	MeasSweeps int

	// Algorithm knobs.
	ClusterK int  // matrix clustering size k (= wrapping count l); 10 in the paper
	Delay    int  // delayed-update block size
	PrePivot bool // true: Algorithm 3 (the paper's method); false: Algorithm 2
	// NoStack disables the prefix/suffix UDT stratification stack and
	// recomputes every boundary Green's function by full re-stratification
	// of the cluster chain (the reference path; slower, same physics).
	NoStack bool
	// SerialSpins disables the concurrent execution of the up/down spin
	// phases inside each sweep (reference path; identical arithmetic).
	SerialSpins bool
	// MeasureBoundaries takes equal-time measurements at every cluster
	// boundary of a measurement sweep (L/k per sweep, averaged) instead of
	// once at its end — QUEST's variance-reduction practice. DefaultConfig
	// enables it.
	MeasureBoundaries bool
	// MeasureDynamics additionally measures the time-displaced Green's
	// function G(d, tau) for tau = k, 2k, ..., L/2 slices once per
	// measurement sweep (QUEST's "dynamic" observables). Off by default —
	// each tau costs a full two-sided stratified evaluation per spin.
	MeasureDynamics bool

	Seed uint64
}

// DefaultConfig returns the paper's canonical small test: half-filled 2D
// Hubbard model, U = 4, beta = 2.
func DefaultConfig() Config {
	return Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1,
		U: 4, Mu: 0, Beta: 2, L: 10,
		WarmSweeps: 50, MeasSweeps: 100,
		ClusterK: 10, Delay: 32, PrePivot: true,
		MeasureBoundaries: true,
		Seed:              1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nx < 1 || c.Ny < 1 || c.Layers < 1:
		return fmt.Errorf("core: invalid lattice %dx%dx%d", c.Nx, c.Ny, c.Layers)
	case c.L < 1:
		return fmt.Errorf("core: need at least 1 time slice")
	case c.Beta <= 0:
		return fmt.Errorf("core: beta must be positive")
	case c.MeasSweeps < 1:
		return fmt.Errorf("core: need at least 1 measurement sweep")
	}
	return nil
}

// Results aggregates the Monte Carlo estimates of a finished run. Scalar
// observables are sign-weighted ratios <O*s>/<s> with jackknife errors.
type Results struct {
	Config Config

	// Scalar observables (per site).
	Density, DensityErr         float64
	DoubleOcc, DoubleOccErr     float64
	Kinetic, KineticErr         float64
	Potential, PotentialErr     float64
	Energy, EnergyErr           float64 // kinetic + potential
	LocalMoment, LocalMomentErr float64
	SAF, SAFErr                 float64 // antiferromagnetic structure factor S(pi,pi)

	AvgSign    float64
	Acceptance float64

	// Vector observables on the in-plane grids (x-fastest ordering).
	Nk, NkErr   []float64 // momentum distribution <n_k>
	Czz, CzzErr []float64 // spin-spin correlation C_zz(dx, dy)

	// Dynamic observables (only when Config.MeasureDynamics): GdTau[i] is
	// the displacement map of G(d, tau) at tau = DisplacedTaus[i] slices.
	DisplacedTaus   []int
	GdTau, GdTauErr [][]float64

	LayerDensity []float64 // per-plane densities

	// Numerical diagnostics.
	MaxWrapDrift float64
	Prof         *profile.Profile
}

// Simulation is a configured DQMC run.
type Simulation struct {
	cfg     Config
	lat     *lattice.Lattice
	model   *hubbard.Model
	prop    *hubbard.Propagator
	field   *hubbard.Field
	rng     *rng.Rand
	sweeper *update.Sweeper
	prof    *profile.Profile
}

// New builds the lattice, propagators and initial field for the
// configuration.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var lat *lattice.Lattice
	if cfg.Layers > 1 {
		lat = lattice.NewMultilayer(cfg.Nx, cfg.Ny, cfg.Layers, cfg.T, cfg.Tperp)
	} else {
		lat = lattice.NewSquare(cfg.Nx, cfg.Ny, cfg.T)
	}
	if cfg.TPrime != 0 {
		lat = lat.WithTPrime(cfg.TPrime)
	}
	if cfg.Ty != 0 {
		lat = lat.WithTy(cfg.Ty)
	}
	model, err := hubbard.NewModel(lat, cfg.U, cfg.Mu, cfg.Beta, cfg.L)
	if err != nil {
		return nil, err
	}
	prop := hubbard.NewPropagator(model)
	r := rng.New(cfg.Seed)
	field := hubbard.NewRandomField(cfg.L, model.N(), r)
	prof := profile.New()
	sw := update.NewSweeper(prop, field, r, update.Options{
		ClusterK:    cfg.ClusterK,
		Delay:       cfg.Delay,
		PrePivot:    cfg.PrePivot,
		NoStack:     cfg.NoStack,
		SerialSpins: cfg.SerialSpins,
		Prof:        prof,
	})
	return &Simulation{cfg: cfg, lat: lat, model: model, prop: prop, field: field, rng: r, sweeper: sw, prof: prof}, nil
}

// Model exposes the underlying Hubbard model (read-only use).
func (s *Simulation) Model() *hubbard.Model { return s.model }

// Lattice exposes the geometry.
func (s *Simulation) Lattice() *lattice.Lattice { return s.lat }

// Profile exposes the phase timing accumulated so far.
func (s *Simulation) Profile() *profile.Profile { return s.prof }

// Progress reports a running simulation's position; see RunProgress.
type Progress struct {
	Stage string // "warmup" or "measure"
	Sweep int
	Total int
}

// Run executes the full schedule and returns the results.
func (s *Simulation) Run() *Results { return s.RunProgress(nil) }

// RunProgress is Run with an optional callback invoked after every sweep.
func (s *Simulation) RunProgress(cb func(Progress)) *Results {
	for w := 0; w < s.cfg.WarmSweeps; w++ {
		s.sweeper.Sweep()
		if cb != nil {
			cb(Progress{Stage: "warmup", Sweep: w + 1, Total: s.cfg.WarmSweeps})
		}
	}

	var (
		signs                               []float64
		density, docc, kinetic, moment, saf []float64
		nkAcc, czzAcc                       stats.VectorAccumulator
		layerAcc                            stats.VectorAccumulator
	)
	// Per-sweep collection: with MeasureBoundaries every cluster boundary
	// contributes one sample (L/k per sweep) and the sweep records their
	// average; otherwise a single measurement is taken after the sweep.
	var collected []*measure.EqualTime
	takeMeasurement := func() {
		done := s.prof.Track(profile.Measurement)
		sign := s.sweeper.Sign()
		collected = append(collected, measure.Measure(s.lat, s.sweeper.GreenUp(), s.sweeper.GreenDn(), sign))
		done()
	}
	if s.cfg.MeasureBoundaries {
		s.sweeper.SetBoundaryHook(takeMeasurement)
		defer s.sweeper.SetBoundaryHook(nil)
	}
	var dynAcc stats.VectorAccumulator
	var dynTaus []int
	for m := 0; m < s.cfg.MeasSweeps; m++ {
		collected = collected[:0]
		s.sweeper.Sweep()
		if len(collected) == 0 {
			takeMeasurement()
		}
		if s.cfg.MeasureDynamics {
			done := s.prof.Track(profile.Measurement)
			k := s.sweeper.ClusterK()
			// Ensure at least one tau fits in (0, L/2].
			every := k
			if every > s.cfg.L/2 {
				every = s.cfg.L / 2
			}
			if every >= 1 {
				md := measure.MeasureDisplaced(s.lat, s.prop, s.field, every, s.cfg.L/2, k)
				if len(md.Taus) > 0 {
					dynTaus = md.Taus
					sg := s.sweeper.Sign()
					flat := make([]float64, 0, len(md.Taus)*len(md.GdTau[0]))
					for _, row := range md.GdTau {
						for _, v := range row {
							flat = append(flat, sg*v)
						}
					}
					dynAcc.Push(flat)
				}
			}
			done()
		}
		// Average the sweep's samples, sign weighted.
		inv := 1 / float64(len(collected))
		var sSign, sDen, sDocc, sKin, sMom, sSAF float64
		nk := make([]float64, len(collected[0].GFun))
		czz := make([]float64, len(collected[0].Czz))
		layers := make([]float64, len(collected[0].LayerDensity))
		for _, et := range collected {
			sg := et.Sign
			sSign += sg * inv
			sDen += sg * et.Density() * inv
			sDocc += sg * et.DoubleOcc * inv
			sKin += sg * et.Kinetic * inv
			sMom += sg * et.LocalMoment * inv
			sSAF += sg * et.AFStructureFactor() * inv
			etnk := et.MomentumDistribution()
			for i := range nk {
				nk[i] += sg * etnk[i] * inv
			}
			for i := range czz {
				czz[i] += sg * et.Czz[i] * inv
			}
			for i := range layers {
				layers[i] += et.LayerDensity[i] * inv
			}
		}
		signs = append(signs, sSign)
		density = append(density, sDen)
		docc = append(docc, sDocc)
		kinetic = append(kinetic, sKin)
		moment = append(moment, sMom)
		saf = append(saf, sSAF)
		nkAcc.Push(nk)
		czzAcc.Push(czz)
		layerAcc.Push(layers)
		if cb != nil {
			cb(Progress{Stage: "measure", Sweep: m + 1, Total: s.cfg.MeasSweeps})
		}
	}

	res := &Results{
		Config:       s.cfg,
		AvgSign:      stats.Mean(signs),
		Acceptance:   s.sweeper.AcceptanceRate(),
		MaxWrapDrift: s.sweeper.MaxWrapDrift(),
		Prof:         s.prof,
	}
	res.Density, res.DensityErr = signedAverage(density, signs)
	res.DoubleOcc, res.DoubleOccErr = signedAverage(docc, signs)
	res.Kinetic, res.KineticErr = signedAverage(kinetic, signs)
	res.LocalMoment, res.LocalMomentErr = signedAverage(moment, signs)
	res.SAF, res.SAFErr = signedAverage(saf, signs)
	res.Potential = s.cfg.U * res.DoubleOcc
	res.PotentialErr = s.cfg.U * res.DoubleOccErr
	res.Energy = res.Kinetic + res.Potential
	res.EnergyErr = res.KineticErr + res.PotentialErr

	avgSign := res.AvgSign
	res.Nk = scaleCopy(nkAcc.MeanVec(), 1/avgSign)
	res.NkErr = nkAcc.ErrVec()
	res.Czz = scaleCopy(czzAcc.MeanVec(), 1/avgSign)
	res.CzzErr = czzAcc.ErrVec()
	res.LayerDensity = layerAcc.MeanVec()
	if s.cfg.MeasureDynamics && len(dynTaus) > 0 {
		res.DisplacedTaus = dynTaus
		mean := scaleCopy(dynAcc.MeanVec(), 1/avgSign)
		errv := dynAcc.ErrVec()
		per := len(mean) / len(dynTaus)
		for i := range dynTaus {
			res.GdTau = append(res.GdTau, mean[i*per:(i+1)*per])
			res.GdTauErr = append(res.GdTauErr, errv[i*per:(i+1)*per])
		}
	}
	return res
}

// signedAverage computes the sign-weighted ratio <O s>/<s> with a
// jackknife error that propagates the correlation between numerator and
// denominator.
func signedAverage(os, signs []float64) (mean, err float64) {
	n := len(os)
	if n == 0 {
		return 0, 0
	}
	idx := make([]float64, n)
	for i := range idx {
		idx[i] = float64(i)
	}
	f := func(sel []float64) float64 {
		var num, den float64
		for _, fi := range sel {
			i := int(fi)
			num += os[i]
			den += signs[i]
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	return stats.Jackknife(idx, f)
}

func scaleCopy(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// Package core ties the DQMC pieces together into the full simulation the
// paper runs: warmup sweeps, measurement sweeps, sign-weighted observable
// accumulation with binned/jackknife errors, and the per-phase timing
// profile of Table I.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"questgo/internal/autopilot"
	"questgo/internal/gpu"
	"questgo/internal/hubbard"
	"questgo/internal/lattice"
	"questgo/internal/mat"
	"questgo/internal/measure"
	"questgo/internal/obs"
	"questgo/internal/profile"
	"questgo/internal/rng"
	"questgo/internal/stats"
	"questgo/internal/update"
)

// Config specifies a DQMC simulation. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	// Lattice geometry.
	Nx, Ny int
	Layers int     // 1 for the standard 2D model
	T      float64 // in-plane hopping (x direction, and y unless Ty set)
	Ty     float64 // anisotropic y hopping (0 = same as T)
	TPrime float64 // next-nearest-neighbor (diagonal) hopping t'
	Tperp  float64 // inter-layer hopping (ignored when Layers == 1)

	// Hamiltonian and temperature.
	U    float64
	Mu   float64
	Beta float64
	L    int // imaginary-time slices

	// Monte Carlo schedule. The paper's production runs use 1000 warmup
	// and 2000 measurement sweeps.
	WarmSweeps int
	MeasSweeps int

	// Algorithm knobs.
	ClusterK int  // matrix clustering size k (= wrapping count l); 10 in the paper
	Delay    int  // delayed-update block size
	PrePivot bool // true: Algorithm 3 (the paper's method); false: Algorithm 2
	// NoStack disables the prefix/suffix UDT stratification stack and
	// recomputes every boundary Green's function by full re-stratification
	// of the cluster chain (the reference path; slower, same physics).
	NoStack bool
	// SerialSpins disables the concurrent execution of the up/down spin
	// phases inside each sweep (reference path; identical arithmetic).
	SerialSpins bool
	// MeasureBoundaries takes equal-time measurements at every cluster
	// boundary of a measurement sweep (L/k per sweep, averaged) instead of
	// once at its end — QUEST's variance-reduction practice. DefaultConfig
	// enables it.
	MeasureBoundaries bool
	// MeasureDynamics additionally measures the time-displaced Green's
	// function G(d, tau) for tau = k, 2k, ..., L/2 slices once per
	// measurement sweep (QUEST's "dynamic" observables). Off by default —
	// each tau costs a full two-sided stratified evaluation per spin.
	MeasureDynamics bool
	// StabilityCheckEvery, when positive, compares the amortized stack
	// Green's function against a full stratified rebuild every that many
	// cluster boundaries and records the residual in the run metrics. Each
	// check costs one extra whole-chain stratification, so it is sampled;
	// 0 disables it.
	StabilityCheckEvery int

	// Devices, when >= 1, runs the sweeps on that many simulated
	// accelerators (internal/gpu) instead of the CPU sweeper: level-3 work
	// — wrapping, clustering, delayed-update flushes — executes through the
	// device cost model, sharded across the group when Devices > 1. The
	// physics is identical (the simulated device computes on the host); the
	// run metrics gain a per-device counter section. 0 keeps the CPU path.
	Devices int
	// UseGraphs captures the device wrap/cluster launch sequences into
	// command graphs and replays them for a single launch overhead per call
	// (requires Devices >= 1). Modeled-time only; never changes numbers.
	UseGraphs bool

	// Autopilot enables the stability feedback controller
	// (internal/autopilot): the run's live telemetry — wrap drift, strat
	// residual, UDT condition — adapts ClusterK and StabilityCheckEvery
	// between sweeps instead of holding the hand-tuned values. Requires the
	// stratification stack (incompatible with NoStack) and a single walker.
	// When on and StabilityCheckEvery is 0, the cadence starts at 4.
	Autopilot bool
	// AutopilotMinK / AutopilotMaxK bound the adapted cluster size
	// (0 = controller defaults: 1 and the configured ClusterK).
	AutopilotMinK int
	AutopilotMaxK int
	// AutopilotCondCeil (log10), AutopilotDriftCeil and
	// AutopilotResidualCeil are the shrink thresholds (0 = controller
	// defaults: 280, 1e-3, 1e-9).
	AutopilotCondCeil     float64
	AutopilotDriftCeil    float64
	AutopilotResidualCeil float64

	Seed uint64
}

// DefaultConfig returns the paper's canonical small test: half-filled 2D
// Hubbard model, U = 4, beta = 2.
func DefaultConfig() Config {
	return Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1,
		U: 4, Mu: 0, Beta: 2, L: 10,
		WarmSweeps: 50, MeasSweeps: 100,
		ClusterK: 10, Delay: 32, PrePivot: true,
		MeasureBoundaries: true,
		Seed:              1,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nx < 1 || c.Ny < 1 || c.Layers < 1:
		return fmt.Errorf("core: invalid lattice %dx%dx%d", c.Nx, c.Ny, c.Layers)
	case c.L < 1:
		return fmt.Errorf("core: need at least 1 time slice")
	case c.Beta <= 0 || math.IsInf(c.Beta, 0) || math.IsNaN(c.Beta):
		return fmt.Errorf("core: beta must be positive and finite, got %v", c.Beta)
	case math.IsNaN(c.T) || math.IsInf(c.T, 0) ||
		math.IsNaN(c.U) || math.IsInf(c.U, 0) ||
		math.IsNaN(c.Mu) || math.IsInf(c.Mu, 0):
		return fmt.Errorf("core: t/U/mu must be finite (t=%v U=%v mu=%v)", c.T, c.U, c.Mu)
	case c.WarmSweeps < 0:
		return fmt.Errorf("core: warmup sweeps must be >= 0, got %d", c.WarmSweeps)
	case c.MeasSweeps < 1:
		return fmt.Errorf("core: need at least 1 measurement sweep")
	case c.ClusterK < 0:
		return fmt.Errorf("core: cluster size must be >= 0 (0 = default), got %d", c.ClusterK)
	case c.Delay < 0:
		return fmt.Errorf("core: delay block size must be >= 0 (0 = default), got %d", c.Delay)
	case c.StabilityCheckEvery < 0:
		return fmt.Errorf("core: stability check cadence must be >= 0 (0 = off), got %d", c.StabilityCheckEvery)
	case c.Autopilot && c.NoStack:
		return fmt.Errorf("core: autopilot needs the stratification stack (NoStack must be false)")
	case c.AutopilotMinK < 0 || c.AutopilotMaxK < 0:
		return fmt.Errorf("core: autopilot k bounds must be >= 0 (0 = default), got min %d max %d", c.AutopilotMinK, c.AutopilotMaxK)
	case c.AutopilotMinK > 0 && c.AutopilotMaxK > 0 && c.AutopilotMinK > c.AutopilotMaxK:
		return fmt.Errorf("core: autopilot min k %d exceeds max k %d", c.AutopilotMinK, c.AutopilotMaxK)
	case c.Devices < 0:
		return fmt.Errorf("core: device count must be >= 0 (0 = CPU sweeper), got %d", c.Devices)
	case c.UseGraphs && c.Devices < 1:
		return fmt.Errorf("core: command graphs need a device (set Devices >= 1)")
	case c.Devices >= 1 && !c.PrePivot:
		return fmt.Errorf("core: the device sweeper stratifies with Algorithm 3 only (PrePivot must be true)")
	case math.IsNaN(c.AutopilotCondCeil) || c.AutopilotCondCeil < 0 ||
		math.IsNaN(c.AutopilotDriftCeil) || c.AutopilotDriftCeil < 0 ||
		math.IsNaN(c.AutopilotResidualCeil) || c.AutopilotResidualCeil < 0:
		return fmt.Errorf("core: autopilot ceilings must be >= 0 and not NaN (cond %v drift %v residual %v)",
			c.AutopilotCondCeil, c.AutopilotDriftCeil, c.AutopilotResidualCeil)
	}
	return nil
}

// Results aggregates the Monte Carlo estimates of a finished run. Scalar
// observables are sign-weighted ratios <O*s>/<s> with jackknife errors.
type Results struct {
	Config Config

	// Scalar observables (per site).
	Density, DensityErr         float64
	DoubleOcc, DoubleOccErr     float64
	Kinetic, KineticErr         float64
	Potential, PotentialErr     float64
	Energy, EnergyErr           float64 // kinetic + potential
	LocalMoment, LocalMomentErr float64
	SAF, SAFErr                 float64 // antiferromagnetic structure factor S(pi,pi)

	AvgSign    float64
	Acceptance float64

	// Vector observables on the in-plane grids (x-fastest ordering).
	Nk, NkErr   []float64 // momentum distribution <n_k>
	Czz, CzzErr []float64 // spin-spin correlation C_zz(dx, dy)

	// Dynamic observables (only when Config.MeasureDynamics): GdTau[i] is
	// the displacement map of G(d, tau) at tau = DisplacedTaus[i] slices.
	DisplacedTaus   []int
	GdTau, GdTauErr [][]float64

	LayerDensity []float64 // per-plane densities

	// Numerical diagnostics.
	MaxWrapDrift float64

	// Metrics is the run's exportable metrics document: per-phase wall-time
	// breakdown, operation counts and stability telemetry (see obs.Metrics).
	Metrics *obs.Metrics
	// Prof is the paper's Table-I rendering of the same phase breakdown,
	// derived from Metrics' underlying collector.
	Prof *profile.Profile
}

// sweeper is the Markov-chain engine surface shared by the CPU sweeper
// (update.Sweeper) and the device-offloaded one (gpu.Sweeper): everything
// the run loop, the autopilot and the checkpointing need. The two produce
// the same physics; Config.Devices selects the engine.
type sweeper interface {
	Sweep()
	Sign() float64
	SetSign(float64)
	GreenUp() *mat.Dense
	GreenDn() *mat.Dense
	AcceptanceRate() float64
	Counters() (accepted, proposed int64)
	SetCounters(accepted, proposed int64)
	MaxWrapDrift() float64
	ClusterK() int
	SetClusterK(int) int
	StabilityEvery() int
	SetStabilityEvery(int)
	SetBoundaryHook(func())
}

// Simulation is a configured DQMC run.
type Simulation struct {
	cfg     Config
	lat     *lattice.Lattice
	model   *hubbard.Model
	prop    *hubbard.Propagator
	field   *hubbard.Field
	rng     *rng.Rand
	sweeper sweeper
	group   *gpu.Group // nil unless cfg.Devices >= 1
	col     *obs.Collector
	pilot   *autopilot.Controller // nil unless cfg.Autopilot
}

// newSweeper builds the configured sweep engine: the device group sweeper
// when cfg.Devices >= 1 (sharded over that many simulated accelerators),
// the CPU sweeper otherwise. Shared by New and Resume so a resumed run
// lands on the same engine it checkpointed from.
func newSweeper(cfg Config, prop *hubbard.Propagator, field *hubbard.Field, r *rng.Rand, col *obs.Collector, clusterK, stabEvery int) (sweeper, *gpu.Group) {
	if cfg.Devices >= 1 {
		g := gpu.NewGroup(cfg.Devices, gpu.TeslaC2050())
		return gpu.NewGroupSweeper(g, prop, field, r, gpu.SweeperOptions{
			ClusterK:       clusterK,
			Delay:          cfg.Delay,
			NoStack:        cfg.NoStack,
			SerialSpins:    cfg.SerialSpins,
			UseGraphs:      cfg.UseGraphs,
			Obs:            col,
			StabilityEvery: stabEvery,
		}), g
	}
	return update.NewSweeper(prop, field, r, update.Options{
		ClusterK:       clusterK,
		Delay:          cfg.Delay,
		PrePivot:       cfg.PrePivot,
		NoStack:        cfg.NoStack,
		SerialSpins:    cfg.SerialSpins,
		Obs:            col,
		StabilityEvery: stabEvery,
	}), nil
}

// New builds the lattice, propagators and initial field for the
// configuration.
func New(cfg Config) (*Simulation, error) {
	return newWithCollector(cfg, obs.New())
}

// newWithCollector is New with a caller-supplied collector, so parallel
// walkers of one run can share a single collector (keeping the run-level
// op-counter deltas exact — the counters are process-global).
func newWithCollector(cfg Config, col *obs.Collector) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var lat *lattice.Lattice
	if cfg.Layers > 1 {
		lat = lattice.NewMultilayer(cfg.Nx, cfg.Ny, cfg.Layers, cfg.T, cfg.Tperp)
	} else {
		lat = lattice.NewSquare(cfg.Nx, cfg.Ny, cfg.T)
	}
	if cfg.TPrime != 0 {
		lat = lat.WithTPrime(cfg.TPrime)
	}
	if cfg.Ty != 0 {
		lat = lat.WithTy(cfg.Ty)
	}
	model, err := hubbard.NewModel(lat, cfg.U, cfg.Mu, cfg.Beta, cfg.L)
	if err != nil {
		return nil, err
	}
	prop := hubbard.NewPropagator(model)
	r := rng.New(cfg.Seed)
	field := hubbard.NewRandomField(cfg.L, model.N(), r)
	stabEvery := cfg.StabilityCheckEvery
	if cfg.Autopilot && stabEvery == 0 {
		stabEvery = 4 // the controller is blind without residual samples
	}
	sw, group := newSweeper(cfg, prop, field, r, col, cfg.ClusterK, stabEvery)
	sim := &Simulation{cfg: cfg, lat: lat, model: model, prop: prop, field: field, rng: r, sweeper: sw, group: group, col: col}
	if cfg.Autopilot {
		pilot, err := autopilot.New(autopilot.Config{
			L:                 cfg.L,
			InitialK:          sw.ClusterK(), // sweeper has already snapped k to a divisor of L
			InitialCheckEvery: stabEvery,
			MinK:              cfg.AutopilotMinK,
			MaxK:              cfg.AutopilotMaxK,
			CondCeilLog10:     cfg.AutopilotCondCeil,
			DriftCeil:         cfg.AutopilotDriftCeil,
			ResidualCeil:      cfg.AutopilotResidualCeil,
		})
		if err != nil {
			return nil, fmt.Errorf("core: autopilot: %w", err)
		}
		sim.pilot = pilot
		col.SetStabilityListener(pilot)
	}
	return sim, nil
}

// Model exposes the underlying Hubbard model (read-only use).
func (s *Simulation) Model() *hubbard.Model { return s.model }

// Lattice exposes the geometry.
func (s *Simulation) Lattice() *lattice.Lattice { return s.lat }

// Profile exposes the Table-I phase timing accumulated so far (derived from
// the run's collector).
func (s *Simulation) Profile() *profile.Profile {
	return profile.FromPhases(s.col.PhaseDurations())
}

// Collector exposes the run's metrics collector.
func (s *Simulation) Collector() *obs.Collector { return s.col }

// ClusterK reports the sweeper's current cluster size — the configured value
// snapped to a divisor of L, further adapted by the autopilot when enabled.
func (s *Simulation) ClusterK() int { return s.sweeper.ClusterK() }

// autopilotStep closes the control loop after a sweep: the controller folds
// the sweep's stability window into a decision, and any change is applied to
// the sweeper before the next sweep begins (the Green's function at boundary
// 0 is independent of the clustering, so a resize is exact there).
func (s *Simulation) autopilotStep() {
	if s.pilot == nil {
		return
	}
	a := s.pilot.EndSweep()
	if !a.Changed {
		return
	}
	s.sweeper.SetClusterK(a.K)
	s.sweeper.SetStabilityEvery(a.CheckEvery)
}

// Progress reports a running simulation's position; see RunProgress. Each
// report carries a live snapshot of the phase-timing breakdown, so callers
// can stream "where is the time going" alongside "how far along are we".
type Progress struct {
	Stage string // "warmup" or "measure"
	Sweep int
	Total int

	// Phases is the per-phase time accumulated since the run started; Wall
	// is the elapsed wall time over the same window.
	Phases obs.PhaseDurations
	Wall   time.Duration
}

// Run executes the full schedule and returns the results.
func (s *Simulation) Run() *Results { return s.RunProgress(nil) }

// Deprecated: RunProgress is Run with a progress callback; the package-level
// Run(ctx, cfg, WithProgress(cb)) is the canonical spelling — it validates,
// builds and executes in one call and can be canceled. RunProgress remains
// for callers that manage a Simulation directly (e.g. around checkpoints).
func (s *Simulation) RunProgress(cb func(Progress)) *Results {
	res, _ := s.RunContext(context.Background(), cb)
	return res
}

// report invokes the progress callback with a live phase snapshot.
func (s *Simulation) report(cb func(Progress), stage string, sweep, total int) {
	if cb == nil {
		return
	}
	cb(Progress{
		Stage: stage, Sweep: sweep, Total: total,
		Phases: s.col.PhaseDurations(),
		Wall:   s.col.Wall(),
	})
}

// RunContext executes the full schedule, stopping between sweeps when ctx is
// canceled. On cancellation it returns ctx.Err() with nil results; the
// simulation remains in a consistent state, so the caller can Checkpoint()
// it and resume later (package-level Run wires this up as
// checkpoint-on-cancel).
func (s *Simulation) RunContext(ctx context.Context, cb func(Progress)) (*Results, error) {
	// Re-baseline the collector so constructor work (cluster building, stack
	// setup — or a long gap between New and Run) is excluded from the run's
	// wall time and the phase breakdown stays an honest partition of it. The
	// device clocks re-baseline with it (allocations persist, so the memory
	// high-water mark still covers the whole session).
	s.col.Reset()
	if s.group != nil {
		s.group.Reset()
	}
	return s.runBody(ctx, cb)
}

// runBody is RunContext after the collector re-baseline; shared-collector
// walkers (Run with WithWalkers) enter here directly.
func (s *Simulation) runBody(ctx context.Context, cb func(Progress)) (*Results, error) {
	for w := 0; w < s.cfg.WarmSweeps; w++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.sweeper.Sweep()
		s.autopilotStep()
		s.report(cb, "warmup", w+1, s.cfg.WarmSweeps)
	}

	var (
		signs                               []float64
		density, docc, kinetic, moment, saf []float64
		nkAcc, czzAcc                       stats.VectorAccumulator
		layerAcc                            stats.VectorAccumulator
	)
	// Per-sweep collection: with MeasureBoundaries every cluster boundary
	// contributes one sample (L/k per sweep) and the sweep records their
	// average; otherwise a single measurement is taken after the sweep.
	var collected []*measure.EqualTime
	takeMeasurement := func() {
		start := s.col.Begin()
		sign := s.sweeper.Sign()
		collected = append(collected, measure.Measure(s.lat, s.sweeper.GreenUp(), s.sweeper.GreenDn(), sign))
		s.col.End(obs.PhaseMeasure, start)
	}
	if s.cfg.MeasureBoundaries {
		s.sweeper.SetBoundaryHook(takeMeasurement)
		defer s.sweeper.SetBoundaryHook(nil)
	}
	var dynAcc stats.VectorAccumulator
	var dynTaus []int
	for m := 0; m < s.cfg.MeasSweeps; m++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		collected = collected[:0]
		s.sweeper.Sweep()
		s.autopilotStep()
		if len(collected) == 0 {
			takeMeasurement()
		}
		if s.cfg.MeasureDynamics {
			dstart := s.col.Begin()
			k := s.sweeper.ClusterK()
			// Ensure at least one tau fits in (0, L/2].
			every := k
			if every > s.cfg.L/2 {
				every = s.cfg.L / 2
			}
			if every >= 1 {
				md := measure.MeasureDisplaced(s.lat, s.prop, s.field, every, s.cfg.L/2, k)
				if len(md.Taus) > 0 {
					dynTaus = md.Taus
					sg := s.sweeper.Sign()
					flat := make([]float64, 0, len(md.Taus)*len(md.GdTau[0]))
					for _, row := range md.GdTau {
						for _, v := range row {
							flat = append(flat, sg*v)
						}
					}
					dynAcc.Push(flat)
				}
			}
			s.col.End(obs.PhaseMeasure, dstart)
		}
		// Average the sweep's samples, sign weighted.
		inv := 1 / float64(len(collected))
		var sSign, sDen, sDocc, sKin, sMom, sSAF float64
		nk := make([]float64, len(collected[0].GFun))
		czz := make([]float64, len(collected[0].Czz))
		layers := make([]float64, len(collected[0].LayerDensity))
		for _, et := range collected {
			sg := et.Sign
			sSign += sg * inv
			sDen += sg * et.Density() * inv
			sDocc += sg * et.DoubleOcc * inv
			sKin += sg * et.Kinetic * inv
			sMom += sg * et.LocalMoment * inv
			sSAF += sg * et.AFStructureFactor() * inv
			etnk := et.MomentumDistribution()
			for i := range nk {
				nk[i] += sg * etnk[i] * inv
			}
			for i := range czz {
				czz[i] += sg * et.Czz[i] * inv
			}
			for i := range layers {
				layers[i] += et.LayerDensity[i] * inv
			}
		}
		signs = append(signs, sSign)
		density = append(density, sDen)
		docc = append(docc, sDocc)
		kinetic = append(kinetic, sKin)
		moment = append(moment, sMom)
		saf = append(saf, sSAF)
		nkAcc.Push(nk)
		czzAcc.Push(czz)
		layerAcc.Push(layers)
		s.report(cb, "measure", m+1, s.cfg.MeasSweeps)
	}

	// The final statistics (jackknife errors, vector averages) belong to the
	// measurement phase of the breakdown.
	fstart := s.col.Begin()
	res := &Results{
		Config:       s.cfg,
		AvgSign:      stats.Mean(signs),
		Acceptance:   s.sweeper.AcceptanceRate(),
		MaxWrapDrift: s.sweeper.MaxWrapDrift(),
	}
	res.Density, res.DensityErr = signedAverage(density, signs)
	res.DoubleOcc, res.DoubleOccErr = signedAverage(docc, signs)
	res.Kinetic, res.KineticErr = signedAverage(kinetic, signs)
	res.LocalMoment, res.LocalMomentErr = signedAverage(moment, signs)
	res.SAF, res.SAFErr = signedAverage(saf, signs)
	res.Potential = s.cfg.U * res.DoubleOcc
	res.PotentialErr = s.cfg.U * res.DoubleOccErr
	res.Energy = res.Kinetic + res.Potential
	res.EnergyErr = res.KineticErr + res.PotentialErr

	avgSign := res.AvgSign
	res.Nk = scaleCopy(nkAcc.MeanVec(), 1/avgSign)
	res.NkErr = nkAcc.ErrVec()
	res.Czz = scaleCopy(czzAcc.MeanVec(), 1/avgSign)
	res.CzzErr = czzAcc.ErrVec()
	res.LayerDensity = layerAcc.MeanVec()
	if s.cfg.MeasureDynamics && len(dynTaus) > 0 {
		res.DisplacedTaus = dynTaus
		mean := scaleCopy(dynAcc.MeanVec(), 1/avgSign)
		errv := dynAcc.ErrVec()
		per := len(mean) / len(dynTaus)
		for i := range dynTaus {
			res.GdTau = append(res.GdTau, mean[i*per:(i+1)*per])
			res.GdTauErr = append(res.GdTauErr, errv[i*per:(i+1)*per])
		}
	}
	s.col.End(obs.PhaseMeasure, fstart)
	s.col.Finish()
	res.Metrics = s.col.Metrics()
	if s.pilot != nil {
		res.Metrics.Autopilot = s.pilot.MetricsDoc()
	}
	if s.group != nil {
		for i, d := range s.group.Devs {
			res.Metrics.Devices = append(res.Metrics.Devices, obs.DeviceMetrics{
				Device:           fmt.Sprintf("dev%d", i),
				ClockMS:          float64(d.Clock()) / float64(time.Millisecond),
				LaunchOverheadMS: float64(d.LaunchOverhead()) / float64(time.Millisecond),
				ModeledGFlops:    d.GFlopsRate(),
				Flops:            int64(d.Flops()),
				TransferredBytes: d.Transferred(),
				Kernels:          int64(d.Kernels()),
				MaxAllocBytes:    d.MaxAllocBytes(),
			})
		}
	}
	res.Prof = profile.FromPhases(s.col.PhaseDurations())
	return res, nil
}

// signedAverage computes the sign-weighted ratio <O s>/<s> with a
// jackknife error that propagates the correlation between numerator and
// denominator.
func signedAverage(os, signs []float64) (mean, err float64) {
	n := len(os)
	if n == 0 {
		return 0, 0
	}
	idx := make([]float64, n)
	for i := range idx {
		idx[i] = float64(i)
	}
	f := func(sel []float64) float64 {
		var num, den float64
		for _, fi := range sel {
			i := int(fi)
			num += os[i]
			den += signs[i]
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	return stats.Jackknife(idx, f)
}

func scaleCopy(v []float64, s float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

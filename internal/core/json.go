package core

import (
	"encoding/json"
	"io"
	"os"

	"questgo/internal/obs"
	"questgo/internal/profile"
)

// resultsJSON is the serialization view of Results: everything a
// downstream analysis needs, with the profile flattened to percentages.
type resultsJSON struct {
	Config Config `json:"config"`

	Density        float64 `json:"density"`
	DensityErr     float64 `json:"density_err"`
	DoubleOcc      float64 `json:"double_occupancy"`
	DoubleOccErr   float64 `json:"double_occupancy_err"`
	Kinetic        float64 `json:"kinetic"`
	KineticErr     float64 `json:"kinetic_err"`
	Potential      float64 `json:"potential"`
	PotentialErr   float64 `json:"potential_err"`
	Energy         float64 `json:"energy"`
	EnergyErr      float64 `json:"energy_err"`
	LocalMoment    float64 `json:"local_moment"`
	LocalMomentErr float64 `json:"local_moment_err"`
	SAF            float64 `json:"s_af"`
	SAFErr         float64 `json:"s_af_err"`

	AvgSign      float64 `json:"avg_sign"`
	Acceptance   float64 `json:"acceptance"`
	MaxWrapDrift float64 `json:"max_wrap_drift"`

	Nk           []float64 `json:"nk"`
	NkErr        []float64 `json:"nk_err"`
	Czz          []float64 `json:"czz"`
	CzzErr       []float64 `json:"czz_err"`
	LayerDensity []float64 `json:"layer_density,omitempty"`

	DisplacedTaus []int       `json:"displaced_taus,omitempty"`
	GdTau         [][]float64 `json:"gd_tau,omitempty"`
	GdTauErr      [][]float64 `json:"gd_tau_err,omitempty"`

	// Metrics is the run's full metrics document (phase breakdown, op
	// counts, stability telemetry); ProfilePercent is the legacy Table-I
	// flattening kept for downstream readers.
	Metrics        *obs.Metrics       `json:"metrics,omitempty"`
	ProfilePercent map[string]float64 `json:"profile_percent,omitempty"`
}

// WriteJSON writes the results as indented JSON.
func (r *Results) WriteJSON(w io.Writer) error {
	out := resultsJSON{
		Config:         r.Config,
		Density:        r.Density,
		DensityErr:     r.DensityErr,
		DoubleOcc:      r.DoubleOcc,
		DoubleOccErr:   r.DoubleOccErr,
		Kinetic:        r.Kinetic,
		KineticErr:     r.KineticErr,
		Potential:      r.Potential,
		PotentialErr:   r.PotentialErr,
		Energy:         r.Energy,
		EnergyErr:      r.EnergyErr,
		LocalMoment:    r.LocalMoment,
		LocalMomentErr: r.LocalMomentErr,
		SAF:            r.SAF,
		SAFErr:         r.SAFErr,
		AvgSign:        r.AvgSign,
		Acceptance:     r.Acceptance,
		MaxWrapDrift:   r.MaxWrapDrift,
		Nk:             r.Nk,
		NkErr:          r.NkErr,
		Czz:            r.Czz,
		CzzErr:         r.CzzErr,
		LayerDensity:   r.LayerDensity,
		DisplacedTaus:  r.DisplacedTaus,
		GdTau:          r.GdTau,
		GdTauErr:       r.GdTauErr,
		Metrics:        r.Metrics,
	}
	if r.Prof != nil {
		pc := r.Prof.Percentages()
		out.ProfilePercent = map[string]float64{}
		for c := profile.Category(0); c < profile.NumCategories; c++ {
			out.ProfilePercent[c.Name()] = pc[c]
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveJSON writes the results to a file.
func (r *Results) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSONDensity reads back just the density from a saved results file
// (a convenience for tests and quick scripting).
func LoadJSONDensity(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var v struct {
		Density float64 `json:"density"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return 0, err
	}
	return v.Density, nil
}

package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"questgo/internal/obs"
	"questgo/internal/profile"
	"questgo/internal/schema"
)

// ResultsSchemaVersion is the wire version of the results document. Major
// bumps rename/retype/remove fields; minor bumps only add.
const ResultsSchemaVersion = "1.0"

// resultsJSON is the serialization view of Results: everything a
// downstream analysis needs, with the profile flattened to percentages.
type resultsJSON struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	Config        Config `json:"config"`

	Density        float64 `json:"density"`
	DensityErr     float64 `json:"density_err"`
	DoubleOcc      float64 `json:"double_occupancy"`
	DoubleOccErr   float64 `json:"double_occupancy_err"`
	Kinetic        float64 `json:"kinetic"`
	KineticErr     float64 `json:"kinetic_err"`
	Potential      float64 `json:"potential"`
	PotentialErr   float64 `json:"potential_err"`
	Energy         float64 `json:"energy"`
	EnergyErr      float64 `json:"energy_err"`
	LocalMoment    float64 `json:"local_moment"`
	LocalMomentErr float64 `json:"local_moment_err"`
	SAF            float64 `json:"s_af"`
	SAFErr         float64 `json:"s_af_err"`

	AvgSign      float64 `json:"avg_sign"`
	Acceptance   float64 `json:"acceptance"`
	MaxWrapDrift float64 `json:"max_wrap_drift"`

	Nk           []float64 `json:"nk"`
	NkErr        []float64 `json:"nk_err"`
	Czz          []float64 `json:"czz"`
	CzzErr       []float64 `json:"czz_err"`
	LayerDensity []float64 `json:"layer_density,omitempty"`

	DisplacedTaus []int       `json:"displaced_taus,omitempty"`
	GdTau         [][]float64 `json:"gd_tau,omitempty"`
	GdTauErr      [][]float64 `json:"gd_tau_err,omitempty"`

	// Metrics is the run's full metrics document (phase breakdown, op
	// counts, stability telemetry); ProfilePercent is the legacy Table-I
	// flattening kept for downstream readers.
	Metrics        *obs.Metrics       `json:"metrics,omitempty"`
	ProfilePercent map[string]float64 `json:"profile_percent,omitempty"`
}

// MarshalJSON emits the stable results wire document (the same shape
// WriteJSON has always produced, now stamped with schema_version). Results
// is one of the service's wire formats, so the in-memory struct and the
// document are convertible in both directions.
func (r *Results) MarshalJSON() ([]byte, error) {
	out := resultsJSON{
		SchemaVersion:  ResultsSchemaVersion,
		Config:         r.Config,
		Density:        r.Density,
		DensityErr:     r.DensityErr,
		DoubleOcc:      r.DoubleOcc,
		DoubleOccErr:   r.DoubleOccErr,
		Kinetic:        r.Kinetic,
		KineticErr:     r.KineticErr,
		Potential:      r.Potential,
		PotentialErr:   r.PotentialErr,
		Energy:         r.Energy,
		EnergyErr:      r.EnergyErr,
		LocalMoment:    r.LocalMoment,
		LocalMomentErr: r.LocalMomentErr,
		SAF:            r.SAF,
		SAFErr:         r.SAFErr,
		AvgSign:        r.AvgSign,
		Acceptance:     r.Acceptance,
		MaxWrapDrift:   r.MaxWrapDrift,
		Nk:             r.Nk,
		NkErr:          r.NkErr,
		Czz:            r.Czz,
		CzzErr:         r.CzzErr,
		LayerDensity:   r.LayerDensity,
		DisplacedTaus:  r.DisplacedTaus,
		GdTau:          r.GdTau,
		GdTauErr:       r.GdTauErr,
		Metrics:        r.Metrics,
	}
	if r.Prof != nil {
		pc := r.Prof.Percentages()
		out.ProfilePercent = map[string]float64{}
		for c := profile.Category(0); c < profile.NumCategories; c++ {
			out.ProfilePercent[c.Name()] = pc[c]
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a results wire document back into Results,
// rejecting incompatible majors. The Prof rendering is derived output and
// is not reconstructed (it survives as ProfilePercent in the document);
// every physical observable round-trips bitwise — float64 values survive
// JSON encoding exactly.
func (r *Results) UnmarshalJSON(data []byte) error {
	var probe struct {
		SchemaVersion string `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return err
	}
	if err := schema.Check(probe.SchemaVersion, ResultsSchemaVersion); err != nil {
		return fmt.Errorf("core: results: %w", err)
	}
	var in resultsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = Results{
		Config:         in.Config,
		Density:        in.Density,
		DensityErr:     in.DensityErr,
		DoubleOcc:      in.DoubleOcc,
		DoubleOccErr:   in.DoubleOccErr,
		Kinetic:        in.Kinetic,
		KineticErr:     in.KineticErr,
		Potential:      in.Potential,
		PotentialErr:   in.PotentialErr,
		Energy:         in.Energy,
		EnergyErr:      in.EnergyErr,
		LocalMoment:    in.LocalMoment,
		LocalMomentErr: in.LocalMomentErr,
		SAF:            in.SAF,
		SAFErr:         in.SAFErr,
		AvgSign:        in.AvgSign,
		Acceptance:     in.Acceptance,
		MaxWrapDrift:   in.MaxWrapDrift,
		Nk:             in.Nk,
		NkErr:          in.NkErr,
		Czz:            in.Czz,
		CzzErr:         in.CzzErr,
		LayerDensity:   in.LayerDensity,
		DisplacedTaus:  in.DisplacedTaus,
		GdTau:          in.GdTau,
		GdTauErr:       in.GdTauErr,
		Metrics:        in.Metrics,
	}
	return nil
}

// WriteJSON writes the results as indented JSON.
func (r *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SaveJSON writes the results to a file.
func (r *Results) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSONDensity reads back just the density from a saved results file
// (a convenience for tests and quick scripting).
func LoadJSONDensity(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var v struct {
		Density float64 `json:"density"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return 0, err
	}
	return v.Density, nil
}

package core

import (
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// populateConfig sets every field of a Config to a distinctive nonzero
// value by reflection (the same trick as the checkpoint coverage guard), so
// a field that is dropped anywhere in a round trip cannot hide behind a
// zero value.
func populateConfig(t *testing.T) Config {
	t.Helper()
	var cfg Config
	v := reflect.ValueOf(&cfg).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		fv := v.Field(i)
		switch f.Type.Kind() {
		case reflect.Int:
			fv.SetInt(int64(100 + i))
		case reflect.Uint64:
			fv.SetUint(uint64(200 + i))
		case reflect.Float64:
			fv.SetFloat(0.5 + float64(i))
		case reflect.Bool:
			fv.SetBool(true)
		default:
			t.Fatalf("Config field %q has kind %s: teach this test (and the wire struct) to carry it", f.Name, f.Type.Kind())
		}
	}
	return cfg
}

// TestConfigWireFieldCoverage (satellite 2) is the wire-format drift guard:
// every Config field must survive a canonical JSON round trip AND move the
// content hash when it changes. A new Config field that is not mirrored in
// configWire fails both legs here instead of silently escaping the wire
// format and the cache key.
func TestConfigWireFieldCoverage(t *testing.T) {
	base := populateConfig(t)

	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, base) {
		t.Fatalf("Config did not round-trip through the wire format:\n  sent: %+v\n  got:  %+v", base, back)
	}

	baseHash := base.Hash()
	v := reflect.ValueOf(&base).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		mod := base // copy
		mv := reflect.ValueOf(&mod).Elem().Field(i)
		switch tp.Field(i).Type.Kind() {
		case reflect.Int:
			mv.SetInt(mv.Int() + 1)
		case reflect.Uint64:
			mv.SetUint(mv.Uint() + 1)
		case reflect.Float64:
			mv.SetFloat(mv.Float() + 1)
		case reflect.Bool:
			mv.SetBool(!mv.Bool())
		}
		if mod.Hash() == baseHash {
			t.Fatalf("Config field %q does not reach the content hash: add it to configWire", tp.Field(i).Name)
		}
	}
}

func TestConfigWireNamesAreCanonical(t *testing.T) {
	data, err := json.Marshal(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["schema_version"]; !ok {
		t.Fatalf("wire document missing schema_version: %s", data)
	}
	key := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	for k := range doc {
		if !key.MatchString(k) {
			t.Fatalf("wire key %q is not snake_case", k)
		}
	}
	// Spot-check the input-file-aligned names.
	for _, k := range []string{"nx", "beta", "l", "warm", "meas", "k", "prepivot", "seed"} {
		if _, ok := doc[k]; !ok {
			t.Fatalf("wire document missing canonical key %q: %s", k, data)
		}
	}
}

func TestConfigHashDeterministic(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Hash() != b.Hash() {
		t.Fatal("equal configs must hash equal")
	}
	b.Seed++
	if a.Hash() == b.Hash() {
		t.Fatal("seed change must change the hash")
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash %q is not hex sha256", a.Hash())
	}
}

func TestConfigUnmarshalVersioning(t *testing.T) {
	// Missing schema_version: accepted as current.
	var c Config
	if err := json.Unmarshal([]byte(`{"nx":3,"ny":5}`), &c); err != nil {
		t.Fatalf("versionless config rejected: %v", err)
	}
	if c.Nx != 3 || c.Ny != 5 {
		t.Fatalf("versionless config mis-decoded: %+v", c)
	}
	// Same major: accepted even with a newer minor.
	if err := json.Unmarshal([]byte(`{"schema_version":"1.9","nx":2}`), &c); err != nil {
		t.Fatalf("minor skew rejected: %v", err)
	}
	// Unknown major: rejected.
	if err := json.Unmarshal([]byte(`{"schema_version":"2.0","nx":2}`), &c); err == nil ||
		!strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("unknown major not rejected: %v", err)
	}
	// Unknown fields are ignored (minor bumps are additive).
	if err := json.Unmarshal([]byte(`{"nx":4,"from_the_future":true}`), &c); err != nil {
		t.Fatalf("unknown field rejected: %v", err)
	}
}

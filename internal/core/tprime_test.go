package core

import (
	"math"
	"testing"

	"questgo/internal/lattice"
)

func TestTPrimeDispersion(t *testing.T) {
	// U = 0 with t' != 0: the measured momentum distribution must match
	// the t-t' band structure eps_k = -2t(cos kx + cos ky)
	// - 4 t' cos kx cos ky - mu.
	tp := -0.25
	cfg := Config{
		Nx: 6, Ny: 6, Layers: 1, T: 1, TPrime: tp,
		U: 0, Mu: 0, Beta: 3, L: 24,
		WarmSweeps: 2, MeasSweeps: 4,
		ClusterK: 8, Delay: 16, PrePivot: true,
		Seed: 3,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	for _, p := range sim.Lattice().MomentumGrid() {
		eps := -2*(math.Cos(p.Kx)+math.Cos(p.Ky)) - 4*tp*math.Cos(p.Kx)*math.Cos(p.Ky)
		want := 1 / (1 + math.Exp(cfg.Beta*eps))
		got := res.Nk[p.Ix+cfg.Nx*p.Iy]
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("n(k=%.2f,%.2f) = %v want %v", p.Kx, p.Ky, got, want)
		}
	}
}

func TestTPrimeBreaksParticleHoleSymmetry(t *testing.T) {
	// At mu = 0 with t' != 0, U = 0, the density must deviate from 1.
	lat := lattice.NewSquare(6, 6, 1).WithTPrime(-0.3)
	k := lat.KMatrix(0)
	// Trace of the Fermi occupation: sum_k 2 f(eps_k) != N generally.
	if k.At(0, lat.Index(1, 1, 0)) != 0.3 {
		t.Fatalf("diagonal hopping element = %v, want +0.3 (i.e. -t')", k.At(0, lat.Index(1, 1, 0)))
	}
	cfg := Config{
		Nx: 6, Ny: 6, Layers: 1, T: 1, TPrime: -0.3,
		U: 0, Mu: 0, Beta: 4, L: 16,
		WarmSweeps: 2, MeasSweeps: 4,
		ClusterK: 8, Delay: 8, PrePivot: true,
		Seed: 4,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if math.Abs(res.Density-1) < 0.01 {
		t.Fatalf("t' should dope the mu=0 system away from half filling, density = %v", res.Density)
	}
}

func TestTPrimeKineticEnergyConsistent(t *testing.T) {
	// The real-space kinetic energy measurement (bond sums including
	// diagonal bonds) must equal the k-space sum at U = 0.
	tp := 0.2
	cfg := Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1, TPrime: tp,
		U: 0, Mu: 0.1, Beta: 2.5, L: 20,
		WarmSweeps: 2, MeasSweeps: 3,
		ClusterK: 10, Delay: 8, PrePivot: true,
		Seed: 5,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	want := 0.0
	for _, p := range sim.Lattice().MomentumGrid() {
		hop := -2*(math.Cos(p.Kx)+math.Cos(p.Ky)) - 4*tp*math.Cos(p.Kx)*math.Cos(p.Ky)
		eps := hop - cfg.Mu
		want += 2 * hop / (1 + math.Exp(cfg.Beta*eps))
	}
	want /= float64(sim.Lattice().N())
	if math.Abs(res.Kinetic-want) > 1e-8 {
		t.Fatalf("kinetic with t': %v, exact %v", res.Kinetic, want)
	}
}

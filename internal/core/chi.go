package core

import (
	"questgo/internal/measure"
	"questgo/internal/obs"
)

// ChiResult holds sampled imaginary-time spin susceptibilities.
type ChiResult struct {
	AF, AFErr           float64 // chi_zz(pi, pi)
	Uniform, UniformErr float64 // chi_zz(0, 0)
	Samples             int
}

// SampleSusceptibility runs `samples` additional sweeps, measuring the
// imaginary-time spin susceptibility chi_zz(q) on each resulting
// configuration (tau sampled every `every` slices; every <= 0 uses the
// cluster size). Call after Run so the chain is equilibrated. The
// susceptibility requires two displaced Green's function evaluations per
// sampled tau per spin, so this costs considerably more per sweep than the
// equal-time measurements.
func (s *Simulation) SampleSusceptibility(samples, every int) *ChiResult {
	if samples < 1 {
		samples = 1
	}
	if every <= 0 {
		every = s.sweeper.ClusterK()
	}
	var af, uni, signs []float64
	for i := 0; i < samples; i++ {
		s.sweeper.Sweep()
		start := s.col.Begin()
		chi := measure.MeasureSusceptibility(s.lat, s.prop, s.field, every, s.sweeper.ClusterK())
		sg := s.sweeper.Sign()
		af = append(af, sg*chi.ChiAF())
		uni = append(uni, sg*chi.ChiUniform())
		signs = append(signs, sg)
		s.col.End(obs.PhaseMeasure, start)
	}
	res := &ChiResult{Samples: samples}
	res.AF, res.AFErr = signedAverage(af, signs)
	res.Uniform, res.UniformErr = signedAverage(uni, signs)
	return res
}

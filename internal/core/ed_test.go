package core

import (
	"math"

	"questgo/internal/lapack"
	"questgo/internal/lattice"
	"questgo/internal/mat"
)

// This file contains a tiny exact-diagonalization (ED) solver for Hubbard
// clusters of up to ~8 spin-orbitals, used to validate the full DQMC
// pipeline end to end: the DQMC estimates (with their Trotter and Monte
// Carlo errors) must reproduce the exact thermal averages.
//
// Modes are ordered m = site + N*spin (spin 0 = up, 1 = down) and basis
// states are occupation bitmasks with the standard Jordan-Wigner sign
// convention.

type edSystem struct {
	lat   *lattice.Lattice
	nSite int
	dim   int
	evals []float64
	evecs *mat.Dense
}

// newED diagonalizes H = sum_{ij,s} K(i,j) c+_{is} c_{js}
//
//   - U sum_i (n_up - 1/2)(n_dn - 1/2)
//
// which is the Hamiltonian the HS-decoupled DQMC actually samples at
// chemical potential mu (inside K).
func newED(lat *lattice.Lattice, u, mu float64) *edSystem {
	n := lat.N()
	nm := 2 * n
	dim := 1 << nm
	k := lat.KMatrix(mu)
	h := mat.New(dim, dim)
	for s := 0; s < dim; s++ {
		// Diagonal: interaction + diagonal of K.
		var diag float64
		for i := 0; i < n; i++ {
			nu := float64((s >> i) & 1)
			nd := float64((s >> (i + n)) & 1)
			diag += u * (nu - 0.5) * (nd - 0.5)
			diag += k.At(i, i) * (nu + nd)
		}
		h.Set(s, s, h.At(s, s)+diag)
		// Hopping: K(i,j) c+_{is} c_{js} for i != j.
		for spin := 0; spin < 2; spin++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j || k.At(i, j) == 0 {
						continue
					}
					a := i + n*spin
					b := j + n*spin
					s2, sign := hopBit(s, a, b, nm)
					if sign != 0 {
						h.Set(s2, s, h.At(s2, s)+k.At(i, j)*sign)
					}
				}
			}
		}
	}
	evals, evecs := lapack.SymEig(h)
	return &edSystem{lat: lat, nSite: n, dim: dim, evals: evals, evecs: evecs}
}

// hopBit applies c+_a c_b to basis state s, returning the resulting state
// and the fermionic sign (0 if annihilated).
func hopBit(s, a, b, nm int) (int, float64) {
	if (s>>b)&1 == 0 {
		return 0, 0
	}
	sign := jwSign(s, b)
	s2 := s &^ (1 << b)
	if (s2>>a)&1 == 1 {
		return 0, 0
	}
	sign *= jwSign(s2, a)
	return s2 | (1 << a), sign
}

// jwSign counts occupied modes below m.
func jwSign(s, m int) float64 {
	c := bitsCount(s & ((1 << m) - 1))
	if c%2 == 1 {
		return -1
	}
	return 1
}

func bitsCount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// thermal computes <diag observable> where obs(state) gives the diagonal
// matrix element in the occupation basis.
func (ed *edSystem) thermal(beta float64, obs func(state int) float64) float64 {
	// Shift energies for numerical safety.
	e0 := ed.evals[0]
	var z, acc float64
	for a := 0; a < ed.dim; a++ {
		w := math.Exp(-beta * (ed.evals[a] - e0))
		z += w
		// <a|O|a> for diagonal O: sum_s |<s|a>|^2 obs(s).
		var oa float64
		col := ed.evecs.Col(a)
		for s := 0; s < ed.dim; s++ {
			oa += col[s] * col[s] * obs(s)
		}
		acc += w * oa
	}
	return acc / z
}

// energy computes <H> per site.
func (ed *edSystem) energy(beta float64) float64 {
	e0 := ed.evals[0]
	var z, acc float64
	for a := 0; a < ed.dim; a++ {
		w := math.Exp(-beta * (ed.evals[a] - e0))
		z += w
		acc += w * ed.evals[a]
	}
	return acc / z / float64(ed.nSite)
}

// density returns <n> per site.
func (ed *edSystem) density(beta float64) float64 {
	n := ed.nSite
	return ed.thermal(beta, func(s int) float64 {
		return float64(bitsCount(s)) / float64(n)
	})
}

// doubleOcc returns <n_up n_dn> per site.
func (ed *edSystem) doubleOcc(beta float64) float64 {
	n := ed.nSite
	return ed.thermal(beta, func(s int) float64 {
		var d float64
		for i := 0; i < n; i++ {
			d += float64(((s >> i) & 1) * ((s >> (i + n)) & 1))
		}
		return d / float64(n)
	})
}

// czz returns the z-spin correlation <m_z(d) m_z(0)> translation averaged,
// for displacement index d (in-plane, single layer).
func (ed *edSystem) czz(beta float64, dx, dy int) float64 {
	n := ed.nSite
	lat := ed.lat
	return ed.thermal(beta, func(s int) float64 {
		var c float64
		for i := 0; i < n; i++ {
			x, y, z := lat.Coords(i)
			j := lat.Index(x+dx, y+dy, z)
			mi := float64((s>>i)&1) - float64((s>>(i+n))&1)
			mj := float64((s>>j)&1) - float64((s>>(j+n))&1)
			c += mi * mj
		}
		return c / float64(n)
	})
}

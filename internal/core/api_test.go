package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero lattice", func(c *Config) { c.Nx = 0 }},
		{"negative ny", func(c *Config) { c.Ny = -2 }},
		{"zero layers", func(c *Config) { c.Layers = 0 }},
		{"no time slices", func(c *Config) { c.L = 0 }},
		{"negative beta", func(c *Config) { c.Beta = -1 }},
		{"nan beta", func(c *Config) { c.Beta = math.NaN() }},
		{"inf beta", func(c *Config) { c.Beta = math.Inf(1) }},
		{"nan hopping", func(c *Config) { c.T = math.NaN() }},
		{"inf interaction", func(c *Config) { c.U = math.Inf(-1) }},
		{"nan mu", func(c *Config) { c.Mu = math.NaN() }},
		{"negative warmup", func(c *Config) { c.WarmSweeps = -1 }},
		{"no measurement sweeps", func(c *Config) { c.MeasSweeps = 0 }},
		{"negative cluster k", func(c *Config) { c.ClusterK = -1 }},
		{"negative delay", func(c *Config) { c.Delay = -4 }},
		{"negative stability cadence", func(c *Config) { c.StabilityCheckEvery = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted a %s config", tc.name)
			}
			// The builder must surface the same rejection.
			if _, err := cfg.With(); err == nil {
				t.Fatalf("With() accepted a %s config", tc.name)
			}
		})
	}
}

func TestNewConfigBuilder(t *testing.T) {
	cfg, err := NewConfig(
		WithLattice(6, 4),
		WithInteraction(2, -0.5),
		WithTemperature(3, 24),
		WithSchedule(10, 20),
		WithClusterK(8),
		WithStabilityCheck(4),
		WithSeed(99),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nx != 6 || cfg.Ny != 4 || cfg.U != 2 || cfg.Mu != -0.5 ||
		cfg.Beta != 3 || cfg.L != 24 || cfg.WarmSweeps != 10 || cfg.MeasSweeps != 20 ||
		cfg.ClusterK != 8 || cfg.StabilityCheckEvery != 4 || cfg.Seed != 99 {
		t.Fatalf("options not applied: %+v", cfg)
	}
	// Untouched knobs keep the paper defaults.
	if def := DefaultConfig(); cfg.T != def.T || cfg.PrePivot != def.PrePivot {
		t.Fatalf("defaults clobbered: T=%v PrePivot=%v", cfg.T, cfg.PrePivot)
	}
	if _, err := NewConfig(WithTemperature(-1, 8)); err == nil {
		t.Fatal("NewConfig accepted a negative beta")
	}
	// With layers on an existing config, then an invalid override.
	c2, err := cfg.With(WithLayers(2, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Layers != 2 || c2.Tperp != 0.3 || cfg.Layers == 2 {
		t.Fatalf("With must copy: c2=%+v cfg=%+v", c2, cfg)
	}
	if _, err := cfg.With(WithSchedule(-1, 5)); err == nil {
		t.Fatal("With accepted a negative warmup")
	}
}

// TestMetricsJSONRoundTrip runs a small simulation and checks that the
// metrics document survives results serialization with the stable key set:
// every phase appears in phase_ms, the op counters are present, and the
// values match the in-memory document.
func TestMetricsJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 4
	cfg.StabilityCheckEvery = 1
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Results.Metrics not populated")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics struct {
			WallMS        float64            `json:"wall_ms"`
			PhaseMS       map[string]float64 `json:"phase_ms"`
			PhaseCoverage float64            `json:"phase_coverage"`
			Ops           map[string]int64   `json:"ops"`
			Stability     map[string]float64 `json:"stability"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	m := doc.Metrics
	if m.WallMS != res.Metrics.WallMS {
		t.Fatalf("wall_ms %v != %v", m.WallMS, res.Metrics.WallMS)
	}
	for _, ph := range []string{"wrap", "flush", "cluster", "refresh", "measure"} {
		if _, ok := m.PhaseMS[ph]; !ok {
			t.Fatalf("phase_ms missing %q: %v", ph, m.PhaseMS)
		}
	}
	for _, op := range []string{"gemm_flops", "udt_steps", "wraps", "sweeps"} {
		if m.Ops[op] <= 0 {
			t.Fatalf("ops[%s] = %d, want > 0", op, m.Ops[op])
		}
	}
	if m.Ops["sweeps"] != int64(cfg.WarmSweeps+cfg.MeasSweeps) {
		t.Fatalf("ops[sweeps] = %d, want %d", m.Ops["sweeps"], cfg.WarmSweeps+cfg.MeasSweeps)
	}
	if m.Stability["strat_residual_samples"] <= 0 {
		t.Fatalf("stability check never sampled: %v", m.Stability)
	}
}

// TestPhaseBreakdownCoversWall is the acceptance check that the per-phase
// timings account for the run: their sum must be within 10% of the
// collector's wall time on a single-walker run.
func TestPhaseBreakdownCoversWall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.L = 16
	cfg.WarmSweeps, cfg.MeasSweeps = 4, 8
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	var sum float64
	for _, ms := range m.PhaseMS {
		sum += ms
	}
	if m.WallMS <= 0 {
		t.Fatalf("wall_ms = %v", m.WallMS)
	}
	cov := sum / m.WallMS
	if cov < 0.9 || cov > 1.02 {
		t.Fatalf("phase sum %.2f ms covers %.1f%% of wall %.2f ms, want within 10%%",
			sum, 100*cov, m.WallMS)
	}
	if math.Abs(cov-m.PhaseCoverage) > 1e-9 {
		t.Fatalf("PhaseCoverage %v inconsistent with sum/wall %v", m.PhaseCoverage, cov)
	}
}

func TestRunCancelCheckpoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 1000
	path := filepath.Join(t.TempDir(), "ck.json.gz")
	ctx, cancel := context.WithCancel(context.Background())
	sweeps := 0
	_, err := Run(ctx, cfg,
		WithProgress(func(p Progress) {
			sweeps++
			if sweeps == 5 {
				cancel()
			}
		}),
		WithCheckpointOnCancel(path))
	cancel()
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("checkpoint not written on cancel: %v", serr)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.Config.MeasSweeps = 3
	sim, err := Resume(ck)
	if err != nil {
		t.Fatal(err)
	}
	if res := sim.Run(); res.AvgSign == 0 {
		t.Fatal("resumed run produced no statistics")
	}
}

func TestRunRejectsWalkerCheckpoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 1, 2
	if _, err := Run(context.Background(), cfg,
		WithWalkers(2), WithCheckpointOnCancel("x")); err == nil {
		t.Fatal("walkers + checkpoint-on-cancel must be rejected")
	}
}

package core

import (
	"math"
	"runtime"
	"testing"
)

func parallelTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.U, cfg.Beta, cfg.L = 4, 2, 10
	cfg.WarmSweeps, cfg.MeasSweeps = 20, 60
	return cfg
}

func TestRunParallelMergesWalkers(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cfg := parallelTestConfig()
	res, err := RunParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Density-1) > 0.03 {
		t.Fatalf("merged density = %v", res.Density)
	}
	if res.DoubleOccErr <= 0 {
		t.Fatal("merged error bars must be positive with >= 2 walkers")
	}
	if res.AvgSign != 1 {
		t.Fatalf("merged sign %v", res.AvgSign)
	}
	if len(res.Nk) != 16 || len(res.NkErr) != 16 {
		t.Fatal("merged vector shapes wrong")
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 5, 10
	r1, err := RunParallel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunParallel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DoubleOcc != r2.DoubleOcc || r1.Kinetic != r2.Kinetic {
		t.Fatal("parallel runs must be deterministic in the seed")
	}
}

func TestRunParallelWalkersDiffer(t *testing.T) {
	// Individual walkers must be genuinely independent chains.
	cfg := parallelTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 5, 10
	a, err := New(withSeed(cfg, cfg.Seed))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(withSeed(cfg, cfg.Seed+0x9e3779b97f4a7c15))
	if err != nil {
		t.Fatal(err)
	}
	if a.Run().DoubleOcc == b.Run().DoubleOcc {
		t.Fatal("derived walker seeds produced identical chains")
	}
}

func withSeed(cfg Config, s uint64) Config {
	cfg.Seed = s
	return cfg
}

func TestRunParallelSingleWalker(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 3, 6
	res, err := RunParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || math.IsNaN(res.Density) {
		t.Fatal("single-walker path broken")
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, err := RunParallel(parallelTestConfig(), 0); err == nil {
		t.Fatal("zero walkers should fail")
	}
	bad := parallelTestConfig()
	bad.Nx = 0
	if _, err := RunParallel(bad, 2); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestMergeResultsShapeMismatch(t *testing.T) {
	cfg := parallelTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 4
	r1, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Nx = 2 // different lattice => different vector shapes
	r2, err := runOnce(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeResults([]*Results{r1, r2}); err == nil {
		t.Fatal("mismatched shapes must be rejected")
	}
}

func TestMergeResultsErrorShrinks(t *testing.T) {
	// Doubling walkers should not inflate the error (statistically it
	// shrinks ~1/sqrt(W); tolerate noise by requiring no blow-up).
	cfg := parallelTestConfig()
	cfg.MeasSweeps = 40
	r2, err := RunParallel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := RunParallel(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r6.DoubleOccErr > 3*r2.DoubleOccErr {
		t.Fatalf("more walkers should not hurt: err(6) = %v vs err(2) = %v",
			r6.DoubleOccErr, r2.DoubleOccErr)
	}
}

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"questgo/internal/schema"
)

// ConfigSchemaVersion is the wire version of the canonical Config JSON
// document. The major is bumped on any change that renames, retypes or
// removes a field; adding a field bumps the minor only (decoders ignore
// fields they don't know, so minors are forward- and backward-readable).
const ConfigSchemaVersion = "1.0"

// configWire is the canonical JSON shape of a Config: every field, fixed
// snake_case names aligned with the QUEST-style input-file keys, no
// omitempty (canonical documents always carry the full field set, which is
// what makes the content hash stable). The reflection-based coverage test
// in configjson_test.go fails the build of any Config field that is not
// mirrored here, so nothing can silently escape the wire format or the
// hash.
type configWire struct {
	SchemaVersion string `json:"schema_version,omitempty"`

	Nx     int     `json:"nx"`
	Ny     int     `json:"ny"`
	Layers int     `json:"layers"`
	T      float64 `json:"t"`
	Ty     float64 `json:"ty"`
	TPrime float64 `json:"tprime"`
	Tperp  float64 `json:"tperp"`

	U    float64 `json:"u"`
	Mu   float64 `json:"mu"`
	Beta float64 `json:"beta"`
	L    int     `json:"l"`

	WarmSweeps int `json:"warm"`
	MeasSweeps int `json:"meas"`

	ClusterK            int  `json:"k"`
	Delay               int  `json:"delay"`
	PrePivot            bool `json:"prepivot"`
	NoStack             bool `json:"nostack"`
	SerialSpins         bool `json:"serial_spins"`
	MeasureBoundaries   bool `json:"measure_boundaries"`
	MeasureDynamics     bool `json:"measure_dynamics"`
	StabilityCheckEvery int  `json:"stability_check_every"`

	Devices   int  `json:"devices"`
	UseGraphs bool `json:"graphs"`

	Autopilot             bool    `json:"autopilot"`
	AutopilotMinK         int     `json:"autopilot_min_k"`
	AutopilotMaxK         int     `json:"autopilot_max_k"`
	AutopilotCondCeil     float64 `json:"autopilot_cond_ceil"`
	AutopilotDriftCeil    float64 `json:"autopilot_drift_ceil"`
	AutopilotResidualCeil float64 `json:"autopilot_residual_ceil"`

	Seed uint64 `json:"seed"`
}

func (c Config) wire() configWire {
	return configWire{
		Nx: c.Nx, Ny: c.Ny, Layers: c.Layers,
		T: c.T, Ty: c.Ty, TPrime: c.TPrime, Tperp: c.Tperp,
		U: c.U, Mu: c.Mu, Beta: c.Beta, L: c.L,
		WarmSweeps: c.WarmSweeps, MeasSweeps: c.MeasSweeps,
		ClusterK: c.ClusterK, Delay: c.Delay,
		PrePivot: c.PrePivot, NoStack: c.NoStack, SerialSpins: c.SerialSpins,
		MeasureBoundaries: c.MeasureBoundaries, MeasureDynamics: c.MeasureDynamics,
		StabilityCheckEvery: c.StabilityCheckEvery,
		Devices:             c.Devices, UseGraphs: c.UseGraphs,
		Autopilot:     c.Autopilot,
		AutopilotMinK: c.AutopilotMinK, AutopilotMaxK: c.AutopilotMaxK,
		AutopilotCondCeil: c.AutopilotCondCeil, AutopilotDriftCeil: c.AutopilotDriftCeil,
		AutopilotResidualCeil: c.AutopilotResidualCeil,
		Seed:                  c.Seed,
	}
}

func (w configWire) config() Config {
	return Config{
		Nx: w.Nx, Ny: w.Ny, Layers: w.Layers,
		T: w.T, Ty: w.Ty, TPrime: w.TPrime, Tperp: w.Tperp,
		U: w.U, Mu: w.Mu, Beta: w.Beta, L: w.L,
		WarmSweeps: w.WarmSweeps, MeasSweeps: w.MeasSweeps,
		ClusterK: w.ClusterK, Delay: w.Delay,
		PrePivot: w.PrePivot, NoStack: w.NoStack, SerialSpins: w.SerialSpins,
		MeasureBoundaries: w.MeasureBoundaries, MeasureDynamics: w.MeasureDynamics,
		StabilityCheckEvery: w.StabilityCheckEvery,
		Devices:             w.Devices, UseGraphs: w.UseGraphs,
		Autopilot:     w.Autopilot,
		AutopilotMinK: w.AutopilotMinK, AutopilotMaxK: w.AutopilotMaxK,
		AutopilotCondCeil: w.AutopilotCondCeil, AutopilotDriftCeil: w.AutopilotDriftCeil,
		AutopilotResidualCeil: w.AutopilotResidualCeil,
		Seed:                  w.Seed,
	}
}

// MarshalJSON emits the canonical wire form of the configuration: stable
// snake_case field names matching the input-file keys, a schema_version
// stamp, every field always present. This is the shape the service job API
// accepts and the results document embeds.
func (c Config) MarshalJSON() ([]byte, error) {
	w := c.wire()
	w.SchemaVersion = ConfigSchemaVersion
	return json.Marshal(w)
}

// UnmarshalJSON decodes the canonical wire form. A missing schema_version
// is read as the current version (hand-written job requests stay
// convenient); an incompatible major is rejected. Unknown fields are
// ignored, which is what makes minor version bumps additive.
func (c *Config) UnmarshalJSON(data []byte) error {
	var w configWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if err := schema.Check(w.SchemaVersion, ConfigSchemaVersion); err != nil {
		return fmt.Errorf("core: config: %w", err)
	}
	*c = w.config()
	return nil
}

// CanonicalJSON returns the hash input of the configuration: the wire form
// with the schema_version stamp elided (two configs describing the same
// physics must hash equal across compatible wire revisions). The field
// order is the wire struct's declaration order, so the bytes are
// deterministic for a given Config value.
func (c Config) CanonicalJSON() []byte {
	data, err := json.Marshal(c.wire())
	if err != nil {
		// The wire struct is plain ints/floats/bools; Marshal cannot fail
		// unless a field of an unsupported kind is added, which the coverage
		// test rejects first.
		panic(fmt.Sprintf("core: canonical config encoding failed: %v", err))
	}
	return data
}

// Hash returns the deterministic content hash of the configuration — the
// hex SHA-256 of CanonicalJSON. Two Config values hash equal exactly when
// every field is equal, so the hash is a safe key for result caches and
// deduplication: same hash, same physics, same trajectory.
func (c Config) Hash() string {
	sum := sha256.Sum256(c.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

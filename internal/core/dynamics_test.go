package core

import (
	"math"
	"testing"
)

func TestMeasureDynamicsShapes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.U, cfg.Beta, cfg.L = 2, 2, 16
	cfg.ClusterK = 4
	cfg.WarmSweeps, cfg.MeasSweeps = 10, 20
	cfg.MeasureDynamics = true
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	// tau = 4, 8 slices (up to L/2 = 8 in steps of k = 4).
	if len(res.DisplacedTaus) != 2 || res.DisplacedTaus[0] != 4 || res.DisplacedTaus[1] != 8 {
		t.Fatalf("DisplacedTaus = %v", res.DisplacedTaus)
	}
	if len(res.GdTau) != 2 || len(res.GdTau[0]) != 16 {
		t.Fatalf("GdTau shape wrong: %d x %d", len(res.GdTau), len(res.GdTau[0]))
	}
	// Local G(0, tau) decays with tau and stays in (0, 1).
	g1, g2 := res.GdTau[0][0], res.GdTau[1][0]
	if !(g1 > 0 && g1 < 1 && g2 > 0 && g2 < g1) {
		t.Fatalf("local displaced G not decaying: %v -> %v", g1, g2)
	}
	for _, e := range res.GdTauErr[0] {
		if math.IsNaN(e) || e < 0 {
			t.Fatalf("bad error bar %v", e)
		}
	}
}

func TestMeasureDynamicsOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 4
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.GdTau != nil || res.DisplacedTaus != nil {
		t.Fatal("dynamics measured without being requested")
	}
}

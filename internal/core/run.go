package core

import (
	"context"
	"fmt"
	"sync"

	"questgo/internal/obs"
	"questgo/internal/profile"
)

// RunOption configures a package-level Run call.
type RunOption func(*runOptions)

type runOptions struct {
	progress       func(Progress)
	walkers        int
	checkpointPath string
}

// WithProgress registers a callback invoked after every sweep with the
// current position and a live phase-timing snapshot. With multiple walkers
// only the first walker reports, so the callback sees one monotonic stream.
func WithProgress(cb func(Progress)) RunOption {
	return func(o *runOptions) { o.progress = cb }
}

// WithWalkers runs n statistically independent Markov chains concurrently
// (seeds derived deterministically from Config.Seed) and merges their
// results; n <= 1 runs a single chain. All walkers share one metrics
// collector, so the merged Results carry run-exact op counts and a combined
// phase breakdown (whose coverage can exceed 1x wall — the walkers overlap).
func WithWalkers(n int) RunOption {
	return func(o *runOptions) { o.walkers = n }
}

// WithCheckpointOnCancel saves the Markov-chain state to path when the
// context is canceled mid-run, so the chain can be continued with Resume.
// Single-walker runs only.
func WithCheckpointOnCancel(path string) RunOption {
	return func(o *runOptions) { o.checkpointPath = path }
}

// WalkerSeed derives the RNG seed of walker (or shard) w from a base seed:
// a fixed golden-ratio stride spreads the seeds far apart deterministically.
// This is the one seed-derivation rule of the whole system — Run's walker
// group and the service's shard fan-out both use it, so a 1-shard service
// job reproduces a direct single-walker Run bit for bit and an n-shard job
// reproduces Run(..., WithWalkers(n)).
func WalkerSeed(base uint64, w int) uint64 {
	return base + uint64(w)*0x9e3779b97f4a7c15
}

// Run is the unified entry point of the pipeline: it validates and builds
// the simulation, executes the schedule under ctx, and returns Results
// carrying the metrics document. It subsumes the older Simulation.Run /
// RunProgress / RunParallel trio (kept as thin wrappers).
func Run(ctx context.Context, cfg Config, options ...RunOption) (*Results, error) {
	var ro runOptions
	for _, opt := range options {
		opt(&ro)
	}
	if ro.walkers > 1 && ro.checkpointPath != "" {
		return nil, fmt.Errorf("core: checkpoint-on-cancel supports a single walker, not %d", ro.walkers)
	}
	if ro.walkers > 1 && cfg.Autopilot {
		// Walkers share one collector, so its single stability listener cannot
		// route samples to per-walker controllers.
		return nil, fmt.Errorf("core: autopilot supports a single walker, not %d", ro.walkers)
	}
	if ro.walkers <= 1 {
		sim, err := New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunContext(ctx, ro.progress)
		if err != nil {
			if ro.checkpointPath != "" {
				if cerr := sim.Checkpoint().Save(ro.checkpointPath); cerr != nil {
					return nil, fmt.Errorf("core: run canceled (%w); checkpoint failed: %v", err, cerr)
				}
			}
			return nil, err
		}
		return res, nil
	}

	// Multi-walker: one shared collector baselines the op counters around
	// the whole group, so the merged deltas are exact even though the
	// counters are process-global.
	col := obs.New()
	results := make([]*Results, ro.walkers)
	errs := make([]error, ro.walkers)
	var wg sync.WaitGroup
	for w := 0; w < ro.walkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcfg := cfg
			wcfg.Seed = WalkerSeed(cfg.Seed, w)
			sim, err := newWithCollector(wcfg, col)
			if err != nil {
				errs[w] = err
				return
			}
			var cb func(Progress)
			if w == 0 {
				cb = ro.progress
			}
			// runBody, not RunContext: walkers sharing one collector must
			// not re-baseline each other's window. The group's baseline is
			// the collector's construction above.
			results[w], errs[w] = sim.runBody(ctx, cb)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged, err := MergeResults(results)
	if err != nil {
		return nil, err
	}
	col.Finish()
	merged.Metrics = col.Metrics()
	merged.Prof = profile.FromPhases(col.PhaseDurations())
	return merged, nil
}

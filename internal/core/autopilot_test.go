package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

func autopilotTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.U, cfg.Beta, cfg.L = 4, 2, 12
	cfg.ClusterK = 6
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 4
	cfg.Autopilot = true
	return cfg
}

// TestAutopilotValidate covers the new Config rules.
func TestAutopilotValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Autopilot, c.NoStack = true, true },
		func(c *Config) { c.AutopilotMinK = -1 },
		func(c *Config) { c.AutopilotMaxK = -2 },
		func(c *Config) { c.AutopilotMinK, c.AutopilotMaxK = 6, 3 },
		func(c *Config) { c.AutopilotDriftCeil = -1e-6 },
		func(c *Config) { c.AutopilotResidualCeil = nan() },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed Validate", i)
		}
	}
	good, err := NewConfig(WithAutopilot(true), WithAutopilotBounds(1, 10),
		WithAutopilotCeilings(250, 1e-5, 1e-8))
	if err != nil {
		t.Fatal(err)
	}
	if !good.Autopilot || good.AutopilotMinK != 1 || good.AutopilotMaxK != 10 ||
		good.AutopilotCondCeil != 250 || good.AutopilotDriftCeil != 1e-5 ||
		good.AutopilotResidualCeil != 1e-8 {
		t.Fatalf("options not applied: %+v", good)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestAutopilotRun is the end-to-end smoke test: an autopilot run with the
// spin-parallel sweeper completes, reports the controller trajectory in the
// metrics document, and keeps k a divisor of L throughout. Running in the
// -race suite, this also exercises the listener receiving samples from both
// spin goroutines concurrently (satellite 5).
func TestAutopilotRun(t *testing.T) {
	cfg := autopilotTestConfig()
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ap := res.Metrics.Autopilot
	if ap == nil || !ap.Enabled {
		t.Fatal("autopilot run must carry an autopilot metrics document")
	}
	if ap.InitialK != 6 {
		t.Fatalf("initial k = %d, want 6", ap.InitialK)
	}
	if ap.FinalK < 1 || cfg.L%ap.FinalK != 0 {
		t.Fatalf("final k = %d must divide L = %d", ap.FinalK, cfg.L)
	}
	if ap.FinalCheckEvery < 1 {
		t.Fatalf("final check cadence = %d, want >= 1", ap.FinalCheckEvery)
	}
	if res.Metrics.Stability.StratResidualSamples == 0 {
		t.Fatal("autopilot run took no residual samples (controller is blind)")
	}
}

// TestAutopilotShrinksOnTightCeiling: an absurdly tight residual ceiling
// must force the controller off the initial k, and the run must survive the
// mid-run resizes with finite observables.
func TestAutopilotShrinksOnTightCeiling(t *testing.T) {
	cfg := autopilotTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 4, 4
	cfg.AutopilotResidualCeil = 1e-300 // every sample breaches
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ap := res.Metrics.Autopilot
	if ap.Shrinks == 0 || ap.FinalK >= ap.InitialK {
		t.Fatalf("tight ceiling did not shrink: %+v", ap)
	}
	if res.AvgSign == 0 || res.Density != res.Density {
		t.Fatalf("observables corrupted after resize: sign %v density %v", res.AvgSign, res.Density)
	}
}

// TestAutopilotClampedMatchesFixed (satellite 5): an autopilot clamped to a
// constant k (MinK = MaxK = ClusterK) must be bitwise identical to the plain
// fixed-k run — the controller may retune the check cadence, but cadence
// never perturbs the Markov chain, and a clamped k has nowhere to go.
func TestAutopilotClampedMatchesFixed(t *testing.T) {
	fixed := autopilotTestConfig()
	fixed.Autopilot = false
	fixed.StabilityCheckEvery = 4 // match the autopilot default cadence
	fref, err := runOnce(fixed)
	if err != nil {
		t.Fatal(err)
	}

	clamped := autopilotTestConfig()
	clamped.AutopilotMinK, clamped.AutopilotMaxK = clamped.ClusterK, clamped.ClusterK
	clamped.AutopilotResidualCeil = 1e-300 // force breach decisions every sweep
	cres, err := runOnce(clamped)
	if err != nil {
		t.Fatal(err)
	}

	if ap := cres.Metrics.Autopilot; ap.FinalK != clamped.ClusterK {
		t.Fatalf("clamped controller moved k: %+v", ap)
	}
	if cres.Density != fref.Density || cres.DoubleOcc != fref.DoubleOcc ||
		cres.Kinetic != fref.Kinetic || cres.AvgSign != fref.AvgSign ||
		cres.SAF != fref.SAF {
		t.Fatalf("clamped autopilot diverged from fixed-k run:\n  fixed:   den=%v docc=%v kin=%v\n  clamped: den=%v docc=%v kin=%v",
			fref.Density, fref.DoubleOcc, fref.Kinetic, cres.Density, cres.DoubleOcc, cres.Kinetic)
	}
}

// TestAutopilotRejectsWalkers: the walker group shares one collector whose
// single listener cannot serve several controllers.
func TestAutopilotRejectsWalkers(t *testing.T) {
	cfg := autopilotTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 0, 1
	if _, err := Run(context.Background(), cfg, WithWalkers(2)); err == nil {
		t.Fatal("autopilot with multiple walkers must be rejected")
	}
}

// TestCheckpointConfigFieldCoverage (satellite 3) is the drift guard: every
// field of Config must survive a gob round trip of the Checkpoint. The test
// sets each field to a distinctive non-zero value by reflection, so adding
// a Config field that gob cannot serialize (unexported, or an unsupported
// kind this switch does not know how to populate) fails here instead of
// silently resetting on resume.
func TestCheckpointConfigFieldCoverage(t *testing.T) {
	var cfg Config
	v := reflect.ValueOf(&cfg).Elem()
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if !f.IsExported() {
			t.Fatalf("Config field %q is unexported: gob drops it from checkpoints", f.Name)
		}
		fv := v.Field(i)
		switch f.Type.Kind() {
		case reflect.Int:
			fv.SetInt(int64(100 + i))
		case reflect.Uint64:
			fv.SetUint(uint64(200 + i))
		case reflect.Float64:
			fv.SetFloat(0.5 + float64(i))
		case reflect.Bool:
			fv.SetBool(true)
		default:
			t.Fatalf("Config field %q has kind %s: teach this test to populate it", f.Name, f.Type.Kind())
		}
	}

	ck := &Checkpoint{Config: cfg, Sign: 1}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Config, cfg) {
		t.Fatalf("Config did not round-trip through a checkpoint:\n  sent: %+v\n  got:  %+v", cfg, back.Config)
	}
}

// TestResumeKeepsAdaptedK: a checkpoint carrying autopilot state must resume
// with the adapted cluster size and cadence, not the config's originals.
func TestResumeKeepsAdaptedK(t *testing.T) {
	cfg := autopilotTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 1
	cfg.AutopilotResidualCeil = 1e-300 // guarantee the controller adapts
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	ck := sim.Checkpoint()
	if ck.Autopilot == nil {
		t.Fatal("autopilot run must checkpoint the controller state")
	}
	if ck.Autopilot.K >= cfg.ClusterK {
		t.Fatalf("controller did not adapt before checkpoint: k = %d", ck.Autopilot.K)
	}

	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	ck2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := Resume(ck2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim2.ClusterK(); got != ck.Autopilot.K {
		t.Fatalf("resumed sweeper k = %d, want the adapted %d", got, ck.Autopilot.K)
	}
	st := sim2.pilot.State()
	if st.K != ck.Autopilot.K || st.KCap != ck.Autopilot.KCap ||
		st.CheckEvery != ck.Autopilot.CheckEvery || st.Shrinks != ck.Autopilot.Shrinks {
		t.Fatalf("controller state not restored:\n  saved:    %+v\n  restored: %+v", *ck.Autopilot, st)
	}
	// The resumed chain must keep running under the restored controller.
	sim2.cfg.WarmSweeps, sim2.cfg.MeasSweeps = 0, 2
	res := sim2.Run()
	if res.Metrics.Autopilot == nil || res.Metrics.Autopilot.InitialK != ck.Autopilot.K {
		t.Fatalf("resumed metrics lost the adapted k: %+v", res.Metrics.Autopilot)
	}
}

// TestResumeWithoutAutopilotState: a pre-autopilot checkpoint (nil state)
// resumes an autopilot config from the config's own k — no crash, fresh
// controller.
func TestResumeWithoutAutopilotState(t *testing.T) {
	cfg := autopilotTestConfig()
	cfg.WarmSweeps, cfg.MeasSweeps = 1, 1
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	ck := sim.Checkpoint()
	ck.Autopilot = nil
	sim2, err := Resume(ck)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim2.ClusterK(); got != cfg.ClusterK {
		t.Fatalf("resumed k = %d, want config's %d", got, cfg.ClusterK)
	}
}

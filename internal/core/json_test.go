package core

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 3, 6
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["density"].(float64) != res.Density {
		t.Fatal("density not round-tripped")
	}
	if _, ok := decoded["profile_percent"].(map[string]interface{}); !ok {
		t.Fatal("profile percentages missing")
	}
	if len(decoded["nk"].([]interface{})) != 4 {
		t.Fatal("nk array wrong length")
	}
}

func TestSaveJSON(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 2, 3
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.json")
	if err := res.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSONDensity(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != res.Density {
		t.Fatal("file round trip lost density")
	}
}

package core

// ConfigOption adjusts one aspect of a Config under construction; see
// NewConfig.
type ConfigOption func(*Config)

// NewConfig builds a validated configuration: it starts from DefaultConfig,
// applies the options in order, and runs Validate. This is the preferred
// construction path — commands and library callers get the paper's
// canonical defaults plus exactly the knobs they set, and an invalid
// combination fails at build time instead of deep inside New.
func NewConfig(opts ...ConfigOption) (Config, error) {
	cfg := DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// With returns a copy of c with the options applied and validated — the
// same builder semantics as NewConfig but starting from an existing
// configuration (e.g. one loaded from an input file, with command-line
// overrides applied on top).
func (c Config) With(opts ...ConfigOption) (Config, error) {
	for _, opt := range opts {
		opt(&c)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// WithLattice sets the in-plane lattice dimensions.
func WithLattice(nx, ny int) ConfigOption {
	return func(c *Config) { c.Nx, c.Ny = nx, ny }
}

// WithLayers sets the layer count and inter-layer hopping tperp (layers = 1
// restores the standard 2D model; tperp is ignored then).
func WithLayers(layers int, tperp float64) ConfigOption {
	return func(c *Config) { c.Layers, c.Tperp = layers, tperp }
}

// WithHopping sets the in-plane hopping amplitudes: t in x (and y unless ty
// is nonzero), ty anisotropic y hopping, tprime the diagonal next-nearest
// neighbor.
func WithHopping(t, ty, tprime float64) ConfigOption {
	return func(c *Config) { c.T, c.Ty, c.TPrime = t, ty, tprime }
}

// WithInteraction sets the on-site repulsion U and chemical potential mu.
func WithInteraction(u, mu float64) ConfigOption {
	return func(c *Config) { c.U, c.Mu = u, mu }
}

// WithTemperature sets the inverse temperature beta and the number of
// imaginary-time slices L.
func WithTemperature(beta float64, l int) ConfigOption {
	return func(c *Config) { c.Beta, c.L = beta, l }
}

// WithSchedule sets the warmup and measurement sweep counts.
func WithSchedule(warm, meas int) ConfigOption {
	return func(c *Config) { c.WarmSweeps, c.MeasSweeps = warm, meas }
}

// WithClusterK sets the matrix clustering size k (0 keeps the default).
func WithClusterK(k int) ConfigOption {
	return func(c *Config) { c.ClusterK = k }
}

// WithDelay sets the delayed-update block size nd (0 keeps the default).
func WithDelay(nd int) ConfigOption {
	return func(c *Config) { c.Delay = nd }
}

// WithPrePivot selects the stratification variant: true is the paper's
// Algorithm 3 (pre-pivoted QR), false the Algorithm 2 QRP reference.
func WithPrePivot(on bool) ConfigOption {
	return func(c *Config) { c.PrePivot = on }
}

// WithNoStack disables the prefix/suffix UDT stratification stack
// (full-rebuild reference path).
func WithNoStack(on bool) ConfigOption {
	return func(c *Config) { c.NoStack = on }
}

// WithSerialSpins disables the concurrent up/down spin phases.
func WithSerialSpins(on bool) ConfigOption {
	return func(c *Config) { c.SerialSpins = on }
}

// WithMeasureBoundaries toggles per-boundary equal-time measurements.
func WithMeasureBoundaries(on bool) ConfigOption {
	return func(c *Config) { c.MeasureBoundaries = on }
}

// WithMeasureDynamics toggles time-displaced Green's function measurement.
func WithMeasureDynamics(on bool) ConfigOption {
	return func(c *Config) { c.MeasureDynamics = on }
}

// WithStabilityCheck samples the stack-vs-rebuild stratification residual
// every k cluster boundaries (0 disables the check).
func WithStabilityCheck(k int) ConfigOption {
	return func(c *Config) { c.StabilityCheckEvery = k }
}

// WithDevices runs the sweeps on n simulated accelerators (0 restores the
// CPU sweeper; n > 1 shards the spin sectors and their cluster blocks
// across the device group). Same physics, device-modeled timing.
func WithDevices(n int) ConfigOption {
	return func(c *Config) { c.Devices = n }
}

// WithGraphs toggles device command-graph capture/replay of the wrap and
// cluster launch sequences (requires WithDevices >= 1). Modeled-time only.
func WithGraphs(on bool) ConfigOption {
	return func(c *Config) { c.UseGraphs = on }
}

// WithSeed sets the RNG seed.
func WithSeed(seed uint64) ConfigOption {
	return func(c *Config) { c.Seed = seed }
}

// WithAutopilot toggles the stability feedback controller: live drift,
// residual and condition telemetry adapt ClusterK and the stability-check
// cadence between sweeps (see internal/autopilot).
func WithAutopilot(on bool) ConfigOption {
	return func(c *Config) { c.Autopilot = on }
}

// WithAutopilotBounds bounds the autopilot's adapted cluster size to
// [minK, maxK] (0 keeps the controller default for that bound).
func WithAutopilotBounds(minK, maxK int) ConfigOption {
	return func(c *Config) { c.AutopilotMinK, c.AutopilotMaxK = minK, maxK }
}

// WithAutopilotCeilings sets the autopilot shrink thresholds: the log10 UDT
// condition ceiling, the wrap-drift ceiling and the strat-residual ceiling
// (0 keeps the controller default for that threshold).
func WithAutopilotCeilings(condLog10, drift, residual float64) ConfigOption {
	return func(c *Config) {
		c.AutopilotCondCeil = condLog10
		c.AutopilotDriftCeil = drift
		c.AutopilotResidualCeil = residual
	}
}

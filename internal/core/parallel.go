package core

import (
	"context"
	"fmt"
	"math"

	"questgo/internal/stats"
)

// RunParallel runs `walkers` statistically independent Markov chains of the
// same configuration concurrently (seeds derived deterministically from
// cfg.Seed) and merges their results. This is the embarrassingly parallel
// axis of DQMC the paper's multicore platform also exploits between nodes:
// within one chain the linear algebra parallelizes, across chains the
// sampling does.
//
// Error bars on merged scalars are the standard error across walker means
// (each walker is an independent estimate); this requires walkers >= 2 for
// nonzero errors. Vector observables are merged the same way element-wise.
//
// Deprecated: RunParallel is a compatibility wrapper over
// Run(ctx, cfg, WithWalkers(walkers)); call Run directly — it is the one
// canonical entry point, and it also carries a context.
func RunParallel(cfg Config, walkers int) (*Results, error) {
	if walkers < 1 {
		return nil, fmt.Errorf("core: need at least one walker")
	}
	return Run(context.Background(), cfg, WithWalkers(walkers))
}

// MergeResults combines independent runs of the same configuration into
// one estimate.
func MergeResults(rs []*Results) (*Results, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("core: nothing to merge")
	}
	if len(rs) == 1 {
		return rs[0], nil
	}
	out := &Results{Config: rs[0].Config, Prof: rs[0].Prof}
	pick := func(f func(*Results) float64) (mean, err float64) {
		xs := make([]float64, len(rs))
		for i, r := range rs {
			xs[i] = f(r)
		}
		return stats.Mean(xs), stats.StdErr(xs)
	}
	out.Density, out.DensityErr = pick(func(r *Results) float64 { return r.Density })
	out.DoubleOcc, out.DoubleOccErr = pick(func(r *Results) float64 { return r.DoubleOcc })
	out.Kinetic, out.KineticErr = pick(func(r *Results) float64 { return r.Kinetic })
	out.LocalMoment, out.LocalMomentErr = pick(func(r *Results) float64 { return r.LocalMoment })
	out.SAF, out.SAFErr = pick(func(r *Results) float64 { return r.SAF })
	out.Potential = out.Config.U * out.DoubleOcc
	out.PotentialErr = math.Abs(out.Config.U) * out.DoubleOccErr
	out.Energy = out.Kinetic + out.Potential
	out.EnergyErr = out.KineticErr + out.PotentialErr
	out.AvgSign, _ = pick(func(r *Results) float64 { return r.AvgSign })
	out.Acceptance, _ = pick(func(r *Results) float64 { return r.Acceptance })
	for _, r := range rs {
		if r.MaxWrapDrift > out.MaxWrapDrift {
			out.MaxWrapDrift = r.MaxWrapDrift
		}
	}
	var err error
	if out.Nk, out.NkErr, err = mergeVecs(rs, func(r *Results) []float64 { return r.Nk }); err != nil {
		return nil, err
	}
	if out.Czz, out.CzzErr, err = mergeVecs(rs, func(r *Results) []float64 { return r.Czz }); err != nil {
		return nil, err
	}
	if out.LayerDensity, _, err = mergeVecs(rs, func(r *Results) []float64 { return r.LayerDensity }); err != nil {
		return nil, err
	}
	// Dynamic observables, when present on all walkers.
	if len(rs[0].DisplacedTaus) > 0 {
		out.DisplacedTaus = rs[0].DisplacedTaus
		for ti := range rs[0].GdTau {
			mean, errv, err := mergeVecs(rs, func(r *Results) []float64 { return r.GdTau[ti] })
			if err != nil {
				return nil, err
			}
			out.GdTau = append(out.GdTau, mean)
			out.GdTauErr = append(out.GdTauErr, errv)
		}
	}
	return out, nil
}

func mergeVecs(rs []*Results, f func(*Results) []float64) (mean, err []float64, e error) {
	n := len(f(rs[0]))
	mean = make([]float64, n)
	err = make([]float64, n)
	col := make([]float64, len(rs))
	for i := 0; i < n; i++ {
		for w, r := range rs {
			v := f(r)
			if len(v) != n {
				return nil, nil, fmt.Errorf("core: walker results have inconsistent shapes")
			}
			col[w] = v[i]
		}
		mean[i] = stats.Mean(col)
		err[i] = stats.StdErr(col)
	}
	return mean, err, nil
}

package core

import (
	"math"
	"testing"

	"questgo/internal/lattice"
)

// TestAttractiveMatchesED validates the charge-channel HS decoupling end
// to end: a 2x2 cluster with U = -4 against exact diagonalization of the
// same Hamiltonian H_K + U (n_up - 1/2)(n_dn - 1/2).
func TestAttractiveMatchesED(t *testing.T) {
	lat := lattice.NewSquare(2, 2, 1)
	ed := newED(lat, -4, 0)
	beta := 2.0
	wantDocc := ed.doubleOcc(beta)
	if wantDocc <= 0.25 {
		t.Fatalf("sanity: attraction must enhance double occupancy, ED gives %v", wantDocc)
	}

	cfg := Config{
		Nx: 2, Ny: 2, Layers: 1, T: 1,
		U: -4, Mu: 0, Beta: beta, L: 40,
		WarmSweeps: 300, MeasSweeps: 2000,
		ClusterK: 10, Delay: 4, PrePivot: true,
		Seed: 2024,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.AvgSign != 1 {
		t.Fatalf("attractive model must be sign free, got %v", res.AvgSign)
	}
	if math.Abs(res.Density-1) > 3*res.DensityErr+1e-6 {
		t.Fatalf("density %v, want 1 (mu = 0 in the symmetric form)", res.Density)
	}
	tol := 3*res.DoubleOccErr + 0.012
	if math.Abs(res.DoubleOcc-wantDocc) > tol {
		t.Fatalf("double occupancy %v +- %v, ED %v", res.DoubleOcc, res.DoubleOccErr, wantDocc)
	}
	t.Logf("attractive DQMC vs ED: docc %.4f / %.4f", res.DoubleOcc, wantDocc)
}

// TestAttractiveSuppressesSpinEnhancesPairs: compared with the repulsive
// model at the same |U|, the attractive model must show a smaller local
// moment and larger double occupancy.
func TestAttractiveSuppressesSpinEnhancesPairs(t *testing.T) {
	run := func(u float64) *Results {
		cfg := Config{
			Nx: 4, Ny: 4, Layers: 1, T: 1,
			U: u, Mu: 0, Beta: 2, L: 16,
			WarmSweeps: 50, MeasSweeps: 150,
			ClusterK: 8, Delay: 16, PrePivot: true,
			Seed: 99,
		}
		res, err := runOnce(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rep := run(4)
	att := run(-4)
	if att.DoubleOcc <= rep.DoubleOcc {
		t.Fatalf("attraction should enhance pairs: %v vs %v", att.DoubleOcc, rep.DoubleOcc)
	}
	if att.LocalMoment >= rep.LocalMoment {
		t.Fatalf("attraction should suppress moments: %v vs %v", att.LocalMoment, rep.LocalMoment)
	}
	if att.SAF >= rep.SAF {
		t.Fatalf("attraction should suppress S(pi,pi): %v vs %v", att.SAF, rep.SAF)
	}
	if att.AvgSign != 1 {
		t.Fatalf("attractive sign = %v", att.AvgSign)
	}
}

// TestAttractiveDopedSignFree: the headline property — away from half
// filling the attractive model keeps sign exactly one while the repulsive
// model develops a sign problem (not asserted here; its average sign is
// merely < 1 at stronger parameters than these).
func TestAttractiveDopedSignFree(t *testing.T) {
	cfg := Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1,
		U: -4, Mu: -1.0, Beta: 3, L: 24,
		WarmSweeps: 50, MeasSweeps: 150,
		ClusterK: 8, Delay: 16, PrePivot: true,
		Seed: 7,
	}
	res, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgSign != 1 {
		t.Fatalf("doped attractive model must stay sign free, got %v", res.AvgSign)
	}
	if res.Density >= 1 {
		t.Fatalf("mu = -1 should dope below half filling: %v", res.Density)
	}
}

package core

import (
	"math"
	"testing"
)

// Away from half filling the chemical potential must move the density the
// right way, and the sign machinery must keep producing a usable average
// sign at these mild parameters.
func TestDopedDensityFollowsMu(t *testing.T) {
	densityAt := func(mu float64) float64 {
		cfg := Config{
			Nx: 4, Ny: 4, Layers: 1, T: 1,
			U: 2, Mu: mu, Beta: 2, L: 16,
			WarmSweeps: 60, MeasSweeps: 200,
			ClusterK: 8, Delay: 16, PrePivot: true,
			Seed: 31,
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		if math.Abs(res.AvgSign) < 0.5 {
			t.Fatalf("average sign collapsed: %v", res.AvgSign)
		}
		return res.Density
	}
	nMinus := densityAt(-1.0)
	nZero := densityAt(0)
	nPlus := densityAt(1.0)
	if !(nMinus < nZero && nZero < nPlus) {
		t.Fatalf("density not monotone in mu: %v, %v, %v", nMinus, nZero, nPlus)
	}
	if math.Abs(nZero-1) > 0.03 {
		t.Fatalf("mu=0 density %v should be ~1", nZero)
	}
	// Particle-hole symmetry: n(+mu) + n(-mu) = 2 within errors.
	if math.Abs(nMinus+nPlus-2) > 0.06 {
		t.Fatalf("particle-hole symmetry violated: n(-mu)+n(+mu) = %v", nMinus+nPlus)
	}
}

// At U = 0 the DQMC density must match the exact grand-canonical value for
// any mu (no Trotter error in the density at U = 0 up to the kinetic
// discretization, no statistical error since nothing fluctuates).
func TestFreeDopedDensityExact(t *testing.T) {
	mu := -0.7
	cfg := Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1,
		U: 0, Mu: mu, Beta: 3, L: 24,
		WarmSweeps: 2, MeasSweeps: 4,
		ClusterK: 8, Delay: 16, PrePivot: true,
		Seed: 7,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	// Exact: n = (2/N) sum_k f(eps_k - ... ), eps includes mu via K.
	want := 0.0
	for _, p := range sim.Lattice().MomentumGrid() {
		eps := -2*(math.Cos(p.Kx)+math.Cos(p.Ky)) - mu
		want += 2 / (1 + math.Exp(cfg.Beta*eps))
	}
	want /= float64(sim.Lattice().N())
	if math.Abs(res.Density-want) > 1e-8 {
		t.Fatalf("free doped density %v, exact %v", res.Density, want)
	}
	if res.AvgSign != 1 {
		t.Fatalf("free system must have sign 1, got %v", res.AvgSign)
	}
}

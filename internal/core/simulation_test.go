package core

import (
	"math"
	"testing"

	"questgo/internal/lattice"
	"questgo/internal/profile"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Nx = 0
	if bad.Validate() == nil {
		t.Fatal("Nx=0 should be invalid")
	}
	bad = good
	bad.L = 0
	if bad.Validate() == nil {
		t.Fatal("L=0 should be invalid")
	}
	bad = good
	bad.Beta = -1
	if bad.Validate() == nil {
		t.Fatal("beta<0 should be invalid")
	}
	bad = good
	bad.MeasSweeps = 0
	if bad.Validate() == nil {
		t.Fatal("MeasSweeps=0 should be invalid")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestHalfFillingDensity(t *testing.T) {
	// Particle-hole symmetry pins <n> = 1 at mu = 0 on a bipartite
	// lattice, independent of statistics quality.
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.WarmSweeps, cfg.MeasSweeps = 20, 60
	cfg.L = 10
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if math.Abs(res.Density-1) > 0.02 {
		t.Fatalf("half-filled density = %v +- %v", res.Density, res.DensityErr)
	}
	if res.AvgSign != 1 {
		t.Fatalf("sign should be exactly 1 at half filling, got %v", res.AvgSign)
	}
}

func TestDQMCMatchesExactDiagonalization(t *testing.T) {
	// End-to-end validation: 2x2 half-filled cluster, U = 4, beta = 2.
	// ED gives the exact thermal averages of the Hamiltonian the HS
	// decomposition samples; DQMC must agree within Trotter (dtau^2) plus
	// statistical error.
	lat := lattice.NewSquare(2, 2, 1)
	ed := newED(lat, 4, 0)
	beta := 2.0
	wantDocc := ed.doubleOcc(beta)
	wantCzz1 := ed.czz(beta, 1, 0)

	cfg := Config{
		Nx: 2, Ny: 2, Layers: 1, T: 1,
		U: 4, Mu: 0, Beta: beta, L: 40,
		WarmSweeps: 300, MeasSweeps: 2000,
		ClusterK: 10, Delay: 4, PrePivot: true,
		Seed: 12345,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()

	if math.Abs(res.Density-1) > 3*res.DensityErr+1e-6 {
		t.Fatalf("density %v +- %v, want 1", res.Density, res.DensityErr)
	}
	tol := 3*res.DoubleOccErr + 0.01 // stat + Trotter allowance
	if math.Abs(res.DoubleOcc-wantDocc) > tol {
		t.Fatalf("double occupancy %v +- %v, ED %v", res.DoubleOcc, res.DoubleOccErr, wantDocc)
	}
	// Nearest-neighbor spin correlation (Czz index d = (1,0)).
	gotCzz1 := res.Czz[1]
	czzTol := 3*res.CzzErr[1] + 0.02
	if math.Abs(gotCzz1-wantCzz1) > czzTol {
		t.Fatalf("Czz(1,0) = %v +- %v, ED %v", gotCzz1, res.CzzErr[1], wantCzz1)
	}
	// Total energy: kinetic from ED = E - U*docc + U/4 correction... use
	// full energy instead. ED energy includes the -U/4 constant per site
	// from the (n-1/2)(n-1/2) form; DQMC Potential uses U*<n_up n_dn>.
	wantE := ed.energy(beta)
	gotE := res.Kinetic + cfg.U*(res.DoubleOcc-res.Density/2+0.25)
	eTol := 3*(res.KineticErr+cfg.U*res.DoubleOccErr) + 0.03
	if math.Abs(gotE-wantE) > eTol {
		t.Fatalf("energy %v, ED %v (tol %v)", gotE, wantE, eTol)
	}
	t.Logf("DQMC vs ED: docc %.4f/%.4f, Czz(1,0) %.4f/%.4f, E %.4f/%.4f",
		res.DoubleOcc, wantDocc, gotCzz1, wantCzz1, gotE, wantE)
}

func TestAntiferromagneticCorrelations(t *testing.T) {
	// At half filling the nearest-neighbor Czz must be negative (AF) and
	// S(pi,pi) must exceed the local moment (constructive staggered sum).
	cfg := Config{
		Nx: 4, Ny: 4, Layers: 1, T: 1,
		U: 4, Mu: 0, Beta: 3, L: 24,
		WarmSweeps: 100, MeasSweeps: 300,
		ClusterK: 8, Delay: 16, PrePivot: true,
		Seed: 777,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Czz[1] >= 0 {
		t.Fatalf("nearest-neighbor Czz = %v, expected negative (AF)", res.Czz[1])
	}
	if res.SAF <= res.LocalMoment {
		t.Fatalf("S(pi,pi) = %v should exceed local moment %v", res.SAF, res.LocalMoment)
	}
	// The checkerboard pattern: Czz(1,1) positive.
	if res.Czz[1+4*1] <= 0 {
		t.Fatalf("Czz(1,1) = %v, expected positive (checkerboard)", res.Czz[1+4])
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 4
	cfg.WarmSweeps, cfg.MeasSweeps = 3, 5
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var warm, meas int
	sim.RunProgress(func(p Progress) {
		switch p.Stage {
		case "warmup":
			warm++
		case "measure":
			meas++
		}
	})
	if warm != 3 || meas != 5 {
		t.Fatalf("progress callbacks: warm=%d meas=%d", warm, meas)
	}
}

func TestProfilePopulated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 4, 4
	cfg.L = 10
	cfg.WarmSweeps, cfg.MeasSweeps = 5, 10
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	for c := profile.Category(0); c < profile.NumCategories; c++ {
		if res.Prof.Duration(c) == 0 {
			t.Fatalf("profile category %q empty", c.Name())
		}
	}
	pc := res.Prof.Percentages()
	var total float64
	for _, v := range pc {
		total += v
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("percentages sum to %v", total)
	}
}

func TestMultilayerRuns(t *testing.T) {
	cfg := Config{
		Nx: 2, Ny: 2, Layers: 3, T: 1, Tperp: 0.5,
		U: 4, Mu: 0, Beta: 2, L: 8,
		WarmSweeps: 10, MeasSweeps: 20,
		ClusterK: 4, Delay: 8, PrePivot: true,
		Seed: 5,
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if len(res.LayerDensity) != 3 {
		t.Fatalf("layer densities: %v", res.LayerDensity)
	}
	// Symmetric stack: outer layers equal by reflection symmetry
	// (statistically).
	if math.Abs(res.LayerDensity[0]-res.LayerDensity[2]) > 0.1 {
		t.Fatalf("outer layers should be symmetric: %v", res.LayerDensity)
	}
	if math.Abs(res.Density-1) > 0.05 {
		t.Fatalf("multilayer half filling violated: %v", res.Density)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 2, 2
	cfg.L = 8
	cfg.WarmSweeps, cfg.MeasSweeps = 5, 10
	r1, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DoubleOcc != r2.DoubleOcc || r1.Kinetic != r2.Kinetic {
		t.Fatal("same seed must reproduce results exactly")
	}
	cfg.Seed++
	r3, err := runOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DoubleOcc == r3.DoubleOcc {
		t.Fatal("different seeds should differ")
	}
}

func runOnce(cfg Config) (*Results, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// TestTrotterConvergence: halving dtau should move double occupancy toward
// the ED value quadratically; here we just require the finer discretization
// to be at least as close (within error bars).
func TestTrotterConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	lat := lattice.NewSquare(2, 2, 1)
	ed := newED(lat, 6, 0)
	want := ed.doubleOcc(1.5)
	var errs []float64
	for _, l := range []int{6, 24} {
		cfg := Config{
			Nx: 2, Ny: 2, Layers: 1, T: 1,
			U: 6, Mu: 0, Beta: 1.5, L: l,
			WarmSweeps: 200, MeasSweeps: 1500,
			ClusterK: 6, Delay: 4, PrePivot: true,
			Seed: 99,
		}
		res, err := runOnce(cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(res.DoubleOcc-want))
	}
	if errs[1] > errs[0]+0.01 {
		t.Fatalf("Trotter error did not shrink: dtau=0.25 -> %v, dtau=0.0625 -> %v", errs[0], errs[1])
	}
}

package core

import (
	"testing"
)

func TestDeviceConfigValidate(t *testing.T) {
	good := DefaultConfig()
	good.Devices = 2
	good.UseGraphs = true
	if err := good.Validate(); err != nil {
		t.Fatalf("device config invalid: %v", err)
	}
	bad := good
	bad.Devices = -1
	if bad.Validate() == nil {
		t.Fatal("Devices=-1 should be invalid")
	}
	bad = good
	bad.Devices = 0
	if bad.Validate() == nil {
		t.Fatal("UseGraphs without a device should be invalid")
	}
	bad = good
	bad.PrePivot = false
	if bad.Validate() == nil {
		t.Fatal("device sweeper without PrePivot should be invalid")
	}
}

// TestDeviceRunMatchesAcrossShardingAndGraphs runs the same tiny
// simulation on the CPU-free device engine with 1 and 2 simulated
// devices, graphs off and on: the Markov chain — and therefore every
// observable — must be identical, and the per-device telemetry must be
// populated.
func TestDeviceRunMatchesAcrossShardingAndGraphs(t *testing.T) {
	base := DefaultConfig()
	base.Nx, base.Ny = 3, 3
	base.L, base.Beta = 8, 1
	base.ClusterK = 4
	base.WarmSweeps, base.MeasSweeps = 4, 8
	base.Seed = 9

	run := func(devices int, graphs bool) *Results {
		cfg := base
		cfg.Devices = devices
		cfg.UseGraphs = graphs
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}

	ref := run(1, false)
	if len(ref.Metrics.Devices) != 1 {
		t.Fatalf("expected 1 device metrics entry, got %d", len(ref.Metrics.Devices))
	}
	for _, tc := range []struct {
		devices int
		graphs  bool
	}{{1, true}, {2, false}, {2, true}} {
		res := run(tc.devices, tc.graphs)
		if res.Density != ref.Density || res.DoubleOcc != ref.DoubleOcc || res.AvgSign != ref.AvgSign {
			t.Fatalf("devices=%d graphs=%v: observables diverged from single-device ungraphed run",
				tc.devices, tc.graphs)
		}
		if len(res.Metrics.Devices) != tc.devices {
			t.Fatalf("devices=%d: got %d metrics entries", tc.devices, len(res.Metrics.Devices))
		}
		for _, dm := range res.Metrics.Devices {
			if dm.ClockMS <= 0 || dm.Flops <= 0 || dm.Kernels <= 0 || dm.MaxAllocBytes <= 0 {
				t.Fatalf("devices=%d graphs=%v: empty telemetry %+v", tc.devices, tc.graphs, dm)
			}
		}
		if tc.graphs {
			ungraphed := run(tc.devices, false)
			if res.Metrics.Devices[0].LaunchOverheadMS >= ungraphed.Metrics.Devices[0].LaunchOverheadMS {
				t.Fatalf("devices=%d: graphs did not reduce launch overhead (%v >= %v ms)",
					tc.devices, res.Metrics.Devices[0].LaunchOverheadMS, ungraphed.Metrics.Devices[0].LaunchOverheadMS)
			}
		}
	}
}

// TestDeviceResumeReproducesRun checks that the checkpoint path restores
// the device engine: an interrupted-and-resumed device run must land on
// the same observables as an uninterrupted one (the same property the CPU
// engine pins in TestResumeReproducesUninterruptedRun).
func TestDeviceResumeReproducesRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nx, cfg.Ny = 3, 3
	cfg.L, cfg.Beta = 8, 1
	cfg.ClusterK = 4
	cfg.Devices = 2
	cfg.UseGraphs = true
	cfg.Seed = 17

	ref := cfg
	ref.WarmSweeps, ref.MeasSweeps = 3, 6
	full, err := runOnce(ref)
	if err != nil {
		t.Fatal(err)
	}

	first := cfg
	first.WarmSweeps, first.MeasSweeps = 2, 1 // 3 total sweeps, then stop
	sim1, err := New(first)
	if err != nil {
		t.Fatal(err)
	}
	sim1.Run()
	ck := sim1.Checkpoint()
	ck.Config.WarmSweeps, ck.Config.MeasSweeps = 0, 6
	resumed, err := Resume(ck)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.group == nil || resumed.group.Size() != 2 {
		t.Fatal("resume did not rebuild the device group")
	}
	res := resumed.Run()
	if res.DoubleOcc != full.DoubleOcc || res.Kinetic != full.Kinetic {
		t.Fatalf("resumed device run diverged: docc %v vs %v", res.DoubleOcc, full.DoubleOcc)
	}
}
